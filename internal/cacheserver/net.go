package cacheserver

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"txcache/internal/interval"
	"txcache/internal/invalidation"
	"txcache/internal/wire"
)

// Node is the interface the TxCache library uses to talk to one cache
// server; *Server implements it directly (in-process deployments, tests)
// and *Client implements it over TCP. The read-path methods take the
// requesting transaction's context: the TCP client maps its deadline onto
// a per-request timer and abandons the request on cancellation; the
// in-process server degrades cancelled probes to misses. Put stays
// context-free — it is fire-and-forget by design (the cache is an
// optimization; callers never wait on an install).
type Node interface {
	Lookup(ctx context.Context, key string, lo, hi, origLo, origHi interval.Timestamp) LookupResult
	LookupBatch(ctx context.Context, reqs []BatchLookup) []LookupResult
	Put(key string, data []byte, iv interval.Interval, still bool, genSnap interval.Timestamp, tags []invalidation.TagID)
	Stats() Stats
	ResetStats()
}

var (
	_ Node = (*Server)(nil)
	_ Node = (*Client)(nil)
)

// BatchLookup is one probe of a multi-key lookup: the same parameters as
// Lookup, resolved for a whole set of keys in one round trip.
type BatchLookup struct {
	Key                    string
	Lo, Hi, OrigLo, OrigHi interval.Timestamp
}

// Protocol opcodes. Every frame payload is [op:1][reqID:4 LE][body]. A
// request carrying a nonzero reqID receives exactly one response frame
// tagged with the same reqID; reqID 0 marks fire-and-forget frames (async
// puts, invalidation pushes) that are never answered. Responses may be
// interleaved arbitrarily with other requests' responses, which is what
// lets a client pipeline many requests over one connection.
const (
	opLookup          byte = 1
	opLookupResp      byte = 2
	opPut             byte = 3
	opAck             byte = 4
	opStats           byte = 5
	opStatsResp       byte = 6
	opInval           byte = 7
	opResetStats      byte = 8
	opErr             byte = 9
	opLookupBatch     byte = 10
	opLookupBatchResp byte = 11
	opWarmBoot        byte = 12
)

// MaxBatchLookup bounds the probes of one batched lookup so a corrupt
// count prefix cannot cause a huge allocation. The response frame is
// bounded separately: hits that would overflow the frame budget degrade to
// capacity misses.
const MaxBatchLookup = 4096

// Serve accepts request connections on l until l is closed. A connection
// carrying invalidation messages (opInval) is the stream from the database;
// any connection may mix request types.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go s.serveConn(conn)
	}
}

// serveConn processes frames in arrival order. Handling is deliberately
// serial per connection: invalidation-stream messages must be applied in
// send order, and request handlers only ever take the server mutex briefly,
// so per-frame goroutines would buy reordering hazards without concurrency.
// Pipelining still eliminates round-trip stalls — the client does not wait
// for a response before sending the next request — and concurrency comes
// from serving many connections.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	for {
		req, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		resp := s.handle(req)
		if resp != nil {
			_ = conn.SetWriteDeadline(time.Now().Add(serverWriteTimeout))
			if err := wire.WriteFrame(conn, resp); err != nil {
				return
			}
		}
	}
}

// handle processes one request frame, returning the response frame (nil for
// fire-and-forget frames). It must never panic on malformed input: every
// decode is checked and every count prefix is bounded by the bytes that
// actually remain in the payload.
func (s *Server) handle(req []byte) []byte {
	d := wire.NewDecoder(req)
	op := d.Op()
	id := d.U32()
	if d.Err() != nil {
		return nil // too short to even address a reply
	}
	fail := func(err error) []byte {
		if id == 0 {
			return nil
		}
		return errFrame(id, err)
	}
	switch op {
	case opLookup, opLookupBatch, opStats:
		// Response-bearing requests need an address; with reqID 0 the reply
		// could never be matched to a caller, so the frame is dropped
		// unexecuted rather than answered in violation of the
		// fire-and-forget rule.
		if id == 0 {
			return nil
		}
	}
	switch op {
	case opLookup:
		key := d.Str()
		lo := interval.Timestamp(d.U64())
		hi := interval.Timestamp(d.U64())
		origLo := interval.Timestamp(d.U64())
		origHi := interval.Timestamp(d.U64())
		if d.Err() != nil {
			return fail(d.Err())
		}
		//lint:allow ctxflow the wire protocol carries no context; lookups are in-memory and non-blocking
		r := s.Lookup(context.Background(), key, lo, hi, origLo, origHi)
		e := wire.NewBuffer(opLookupResp)
		e.U32(id)
		encodeLookupResult(e, r)
		return e.Bytes()
	case opLookupBatch:
		n := d.U32()
		// Each probe is at least a 4-byte key length plus four timestamps.
		if n > MaxBatchLookup || int(n) > d.Len()/(4+32)+1 {
			return fail(fmt.Errorf("cacheserver: unreasonable batch size %d", n))
		}
		reqs := make([]BatchLookup, 0, n)
		for i := uint32(0); i < n; i++ {
			reqs = append(reqs, BatchLookup{
				Key:    d.Str(),
				Lo:     interval.Timestamp(d.U64()),
				Hi:     interval.Timestamp(d.U64()),
				OrigLo: interval.Timestamp(d.U64()),
				OrigHi: interval.Timestamp(d.U64()),
			})
		}
		if d.Err() != nil {
			return fail(d.Err())
		}
		//lint:allow ctxflow the wire protocol carries no context; lookups are in-memory and non-blocking
		rs := s.LookupBatch(context.Background(), reqs)
		e := wire.NewBuffer(opLookupBatchResp)
		e.U32(id).U32(uint32(len(rs)))
		// The response must stay under MaxFrame no matter how large the hit
		// payloads are; results that would overflow the budget degrade to
		// capacity misses (always safe — the caller just recomputes).
		budget := wire.MaxFrame / 2
		for _, r := range rs {
			if len(e.Bytes())+encodedResultSize(r) > budget {
				encodeLookupResult(e, LookupResult{Miss: MissCapacity})
				continue
			}
			encodeLookupResult(e, r)
		}
		return e.Bytes()
	case opPut:
		key := d.Str()
		lo := interval.Timestamp(d.U64())
		hi := interval.Timestamp(d.U64())
		still := d.Bool()
		genSnap := interval.Timestamp(d.U64())
		n := d.U32()
		// Each tag is at least two length prefixes and a wildcard byte.
		if int(n) > d.Len()/9+1 {
			return fail(fmt.Errorf("cacheserver: unreasonable tag count %d", n))
		}
		tags, _ := invalidation.DecodeTags(d, n) // d.Err() re-checked below
		data := d.Blob()
		if d.Err() != nil {
			return fail(d.Err())
		}
		// Copy data out of the request buffer before it is reused.
		s.Put(key, append([]byte(nil), data...), interval.Interval{Lo: lo, Hi: hi}, still, genSnap, tags)
		if id == 0 {
			return nil // async put: no ack
		}
		return wire.NewBuffer(opAck).U32(id).Bytes()
	case opStats:
		reset := d.Bool()
		if d.Err() != nil {
			return fail(d.Err())
		}
		if reset {
			s.ResetStats()
			return wire.NewBuffer(opAck).U32(id).Bytes()
		}
		st := s.Stats()
		e := wire.NewBuffer(opStatsResp)
		e.U32(id)
		e.U64(st.Lookups).U64(st.Hits)
		e.U64(st.MissCompulsory).U64(st.MissConsistency).U64(st.MissStaleness).U64(st.MissCapacity)
		e.U64(st.Puts).U64(st.Invalidations).U64(st.Invalidated)
		e.U64(st.EvictedCapacity).U64(st.EvictedStale)
		e.I64(st.BytesUsed).I64(int64(st.Versions)).I64(int64(st.Keys))
		e.U64(uint64(st.Horizon))
		return e.Bytes()
	case opWarmBoot:
		ts := interval.Timestamp(d.U64())
		wallNano := d.I64()
		if d.Err() != nil {
			return fail(d.Err())
		}
		s.WarmBoot(ts, time.Unix(0, wallNano))
		if id == 0 {
			return nil
		}
		return wire.NewBuffer(opAck).U32(id).Bytes()
	case opInval:
		m, err := invalidation.DecodeMessage(d)
		if err != nil {
			return fail(err)
		}
		s.ApplyInvalidation(m)
		if id == 0 {
			return nil // in-order fire-and-forget push (tests, local streams)
		}
		// Acked push: the stream owner retries until it sees the ack, which
		// is what makes its at-least-once delivery gapless (duplicates are
		// deduplicated here by timestamp).
		return wire.NewBuffer(opAck).U32(id).Bytes()
	default:
		return fail(fmt.Errorf("cacheserver: unknown opcode %d", op))
	}
}

// encodedResultSize bounds encodeLookupResult's output for r.
func encodedResultSize(r LookupResult) int {
	n := 2 + 8 + 8 + 1 + 4 + 4 + len(r.Data)
	for _, id := range r.Tags {
		t := invalidation.TagOf(id)
		n += 9 + len(t.Table) + len(t.Key)
	}
	return n
}

func encodeLookupResult(e *wire.Buffer, r LookupResult) {
	e.Bool(r.Found).U8(byte(r.Miss))
	e.U64(uint64(r.Validity.Lo)).U64(uint64(r.Validity.Hi)).Bool(r.Still)
	e.U32(uint32(len(r.Tags)))
	for _, id := range r.Tags {
		t := invalidation.TagOf(id)
		e.Str(t.Table).Str(t.Key).Bool(t.Wildcard)
	}
	e.Blob(r.Data)
}

// decodeLookupResult parses one LookupResult positioned after op and reqID,
// interning tags as it goes.
func decodeLookupResult(d *wire.Decoder) (LookupResult, error) {
	var r LookupResult
	r.Found = d.Bool()
	r.Miss = MissKind(d.U8())
	r.Validity.Lo = interval.Timestamp(d.U64())
	r.Validity.Hi = interval.Timestamp(d.U64())
	r.Still = d.Bool()
	n := d.U32()
	if d.Err() != nil {
		return r, d.Err()
	}
	if int(n) > d.Len()/9+1 {
		return r, fmt.Errorf("cacheserver: unreasonable tag count %d", n)
	}
	var err error
	if r.Tags, err = invalidation.DecodeTags(d, n); err != nil {
		return r, err
	}
	r.Data = append([]byte(nil), d.Blob()...)
	return r, d.Err()
}

func errFrame(id uint32, err error) []byte {
	return wire.NewBuffer(opErr).U32(id).Str(err.Error()).Bytes()
}

// Client errors.
var (
	errNotConnected = errors.New("cacheserver: not connected")
	errConnLost     = errors.New("cacheserver: connection lost")
	errTimeout      = errors.New("cacheserver: request timed out")
	errClosed       = errors.New("cacheserver: client closed")
)

// Client defaults.
const (
	// DefaultPoolSize is the number of TCP connections a Client keeps per
	// node. Requests are multiplexed — many in flight per connection — so
	// the pool exists for send-side parallelism, not one-slot-per-request.
	DefaultPoolSize = 4
	// DefaultCallTimeout bounds one request/response exchange. Lookups that
	// time out degrade to compulsory misses.
	DefaultCallTimeout = 2 * time.Second
	// DefaultPutQueue is the bound of the asynchronous put queue. When the
	// queue is full, puts are dropped (and counted), never blocked on: the
	// cache is an optimization.
	DefaultPutQueue = 1024
	// DefaultDrainTimeout bounds how long Close waits for the async put
	// queue to drain before tearing connections down; CloseContext lets the
	// caller pick a different bound.
	DefaultDrainTimeout = time.Second
	// DefaultDialTimeout bounds connection establishment (initial pool fill
	// and reconnects). A blackholed node must fail fast, not hold the dialer
	// for the kernel's multi-minute connect timeout.
	DefaultDialTimeout = 5 * time.Second
	// serverWriteTimeout bounds one response-frame write in the serve loop. A
	// client that stops reading wedges only its own connection goroutine, and
	// only this long.
	serverWriteTimeout = 10 * time.Second
)

// ClientStats are client-side transport counters: how the multiplexed
// protocol is behaving, as opposed to Stats (the remote node's counters).
type ClientStats struct {
	Lookups      uint64 // single-key lookup requests sent
	LookupErrors uint64 // lookups degraded to misses by transport errors
	BatchLookups uint64 // batched lookup requests sent
	BatchKeys    uint64 // total probes carried by batched lookups
	PutsQueued   uint64 // puts accepted into the async queue
	PutsSent     uint64 // puts written to a connection
	PutsDropped  uint64 // puts dropped because the queue was full
	PutErrors    uint64 // puts that failed on every connection
	CallErrors   uint64 // Stats/ResetStats round trips that failed
	Timeouts     uint64 // requests abandoned after DefaultCallTimeout
	Canceled     uint64 // requests abandoned because the caller's context ended
	LateDrops    uint64 // response frames for abandoned request IDs, dropped
	Reconnects   uint64 // connections re-established after a failure
}

// clientCounters is the atomic backing store for ClientStats.
type clientCounters struct {
	lookups, lookupErrors, batchLookups, batchKeys atomic.Uint64
	putsQueued, putsSent, putsDropped, putErrors   atomic.Uint64
	callErrors, timeouts, reconnects               atomic.Uint64
	canceled, lateDrops                            atomic.Uint64
}

// Client is a TCP client for a cache node. It is safe for concurrent use:
// requests are tagged with IDs and multiplexed over a small pool of
// connections, so any number of lookups can be in flight at once, and puts
// are queued and written asynchronously.
type Client struct {
	addr    string
	timeout time.Duration

	conns []*mconn
	rr    atomic.Uint32 // round-robin connection cursor

	putq      chan putItem
	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	counters clientCounters
}

type putItem struct {
	frame []byte
	ack   chan struct{} // Flush marker when non-nil; frame is ignored
}

// mconn is one multiplexed connection: a writer-side mutex, a pending table
// mapping request IDs to response channels, and a reader goroutine that
// dispatches responses and redials after failures.
type mconn struct {
	cl      *Client
	mu      sync.Mutex // guards conn, pending, nextID, and frame writes
	conn    net.Conn   // nil while disconnected
	pending map[uint32]chan []byte
	nextID  uint32
}

// Dial connects to a cache node. poolSize <= 0 selects DefaultPoolSize.
func Dial(addr string, poolSize int) (*Client, error) {
	if poolSize <= 0 {
		poolSize = DefaultPoolSize
	}
	c := &Client{
		addr:    addr,
		timeout: DefaultCallTimeout,
		putq:    make(chan putItem, DefaultPutQueue),
		closed:  make(chan struct{}),
	}
	// The put sender starts before dialing so the drain step of Close works
	// (and returns immediately) even on a partially constructed client.
	c.wg.Add(1)
	go c.putSender()
	for i := 0; i < poolSize; i++ {
		conn, err := net.DialTimeout("tcp", addr, DefaultDialTimeout)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.conns = append(c.conns, &mconn{cl: c, conn: conn, pending: make(map[uint32]chan []byte)})
	}
	for _, m := range c.conns {
		c.wg.Add(1)
		go m.run()
	}
	return c, nil
}

// Close drains queued puts for up to DefaultDrainTimeout, then tears down
// the connection pool, failing all in-flight requests and discarding
// whatever the drain deadline left behind. It is the "drain" half of
// removing a node from a running cluster.
func (c *Client) Close() {
	ctx, cancel := context.WithTimeout(context.Background(), DefaultDrainTimeout)
	defer cancel()
	c.CloseContext(ctx)
}

// CloseContext is Close with a caller-controlled drain deadline: queued
// puts are flushed until ctx expires, then connections come down
// regardless.
func (c *Client) CloseContext(ctx context.Context) {
	c.closeOnce.Do(func() {
		c.drain(ctx)
		close(c.closed)
		for _, m := range c.conns {
			m.mu.Lock()
			if m.conn != nil {
				m.conn.Close()
				m.conn = nil
			}
			for id, ch := range m.pending {
				delete(m.pending, id)
				close(ch)
			}
			m.mu.Unlock()
		}
	})
	c.wg.Wait()
}

// drain waits for the put queue to empty, giving up when ctx ends.
func (c *Client) drain(ctx context.Context) {
	ack := make(chan struct{})
	select {
	case c.putq <- putItem{ack: ack}:
	case <-ctx.Done():
		return
	}
	select {
	case <-ack:
	case <-ctx.Done():
	}
}

// ClientStats snapshots the transport counters.
func (c *Client) ClientStats() ClientStats {
	return ClientStats{
		Lookups:      c.counters.lookups.Load(),
		LookupErrors: c.counters.lookupErrors.Load(),
		BatchLookups: c.counters.batchLookups.Load(),
		BatchKeys:    c.counters.batchKeys.Load(),
		PutsQueued:   c.counters.putsQueued.Load(),
		PutsSent:     c.counters.putsSent.Load(),
		PutsDropped:  c.counters.putsDropped.Load(),
		PutErrors:    c.counters.putErrors.Load(),
		CallErrors:   c.counters.callErrors.Load(),
		Timeouts:     c.counters.timeouts.Load(),
		Canceled:     c.counters.canceled.Load(),
		LateDrops:    c.counters.lateDrops.Load(),
		Reconnects:   c.counters.reconnects.Load(),
	}
}

// newReq starts a request frame with a placeholder request ID that call
// patches once an ID is assigned.
func newReq(op byte) *wire.Buffer {
	e := wire.NewBuffer(op)
	e.U32(0)
	return e
}

// run is the per-connection reader: it dispatches response frames to the
// pending table and owns redialing after a failure. Connection loss is
// logged once per event, not once per affected request.
func (m *mconn) run() {
	defer m.cl.wg.Done()
	backoff := 10 * time.Millisecond
	for {
		m.mu.Lock()
		conn := m.conn
		m.mu.Unlock()
		if conn == nil {
			select {
			case <-m.cl.closed:
				return
			case <-time.After(backoff):
			}
			nc, err := net.DialTimeout("tcp", m.cl.addr, DefaultDialTimeout)
			if err != nil {
				if backoff *= 2; backoff > time.Second {
					backoff = time.Second
				}
				continue
			}
			m.mu.Lock()
			select {
			case <-m.cl.closed:
				// Close ran while we were dialing; installing the new
				// connection now would leak it and block this reader (and
				// Close's wg.Wait) forever.
				m.mu.Unlock()
				nc.Close()
				return
			default:
			}
			m.conn = nc
			m.mu.Unlock()
			m.cl.counters.reconnects.Add(1)
			log.Printf("cacheserver: reconnected to %s (%d puts dropped, %d put errors so far)",
				m.cl.addr, m.cl.counters.putsDropped.Load(), m.cl.counters.putErrors.Load())
			backoff = 10 * time.Millisecond
			continue
		}
		payload, err := wire.ReadFrame(conn)
		if err != nil {
			select {
			case <-m.cl.closed:
				return
			default:
			}
			m.fail(conn, err)
			continue
		}
		if len(payload) >= 5 {
			id := binary.LittleEndian.Uint32(payload[1:5])
			m.mu.Lock()
			ch := m.pending[id]
			delete(m.pending, id)
			m.mu.Unlock()
			if ch != nil {
				ch <- payload
			} else if id != 0 {
				// A response for a request nobody is waiting on: the caller
				// timed out or its context was cancelled and the pending
				// entry was reclaimed. Count it and drop it — delivering it
				// to a reused ID would cross-wire two requests.
				m.cl.counters.lateDrops.Add(1)
			}
		}
	}
}

// fail tears down a broken connection and fails every request pending on
// it; the reader loop will redial.
func (m *mconn) fail(conn net.Conn, err error) {
	conn.Close()
	m.mu.Lock()
	if m.conn == conn {
		m.conn = nil
	}
	for id, ch := range m.pending {
		delete(m.pending, id)
		close(ch)
	}
	m.mu.Unlock()
	log.Printf("cacheserver: connection to %s lost: %v", m.cl.addr, err)
}

// timerPool recycles timeout timers: one per in-flight call would
// otherwise be the hot path's only steady allocation besides frames.
var timerPool sync.Pool

func getTimer(d time.Duration) *time.Timer {
	if t, _ := timerPool.Get().(*time.Timer); t != nil {
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

func putTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	timerPool.Put(t)
}

// call sends one request frame and waits for its tagged response. The
// caller's context is honored with per-request granularity: its deadline
// tightens the request timer (never the connection — other requests
// multiplexed on this conn are unaffected), and on cancellation the
// pending-table entry is reclaimed immediately so the request ID can never
// be answered late into someone else's hands (a late frame is counted in
// ClientStats.LateDrops by the reader and dropped).
func (m *mconn) call(ctx context.Context, frame []byte) ([]byte, error) {
	timeout, ctxBound := m.cl.timeout, false
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			m.cl.counters.canceled.Add(1)
			return nil, err
		}
		if dl, ok := ctx.Deadline(); ok {
			if rem := time.Until(dl); rem < timeout {
				timeout, ctxBound = rem, true
			}
		}
	}
	m.mu.Lock()
	conn := m.conn
	if conn == nil {
		m.mu.Unlock()
		return nil, errNotConnected
	}
	m.nextID++
	if m.nextID == 0 {
		m.nextID = 1
	}
	id := m.nextID
	ch := make(chan []byte, 1)
	m.pending[id] = ch
	binary.LittleEndian.PutUint32(frame[1:5], id)
	// The write happens under m.mu, so it must be bounded: without a
	// deadline, a peer that stops reading while the TCP window fills would
	// wedge every request on this connection with no timeout (the call
	// timer is only armed after the write). The bound is the effective
	// timeout — clamped by the caller's deadline — so a short-deadline
	// request cannot block the connection (and the writers queued behind
	// it) for the full transport timeout.
	_ = conn.SetWriteDeadline(time.Now().Add(timeout))
	err := wire.WriteFrame(conn, frame)
	if err != nil {
		delete(m.pending, id)
		m.mu.Unlock()
		conn.Close() // reader notices and redials
		return nil, err
	}
	m.mu.Unlock()

	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	t := getTimer(timeout)
	defer putTimer(t)
	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, errConnLost
		}
		return resp, nil
	case <-t.C:
		m.mu.Lock()
		delete(m.pending, id)
		m.mu.Unlock()
		// When the caller's deadline tightened the timer, this is the
		// context's expiry, not the transport's: attribute it to the
		// context so Canceled counts it and errors.Is(err,
		// context.DeadlineExceeded) holds for the caller. (Checked via
		// ctxBound, not ctx.Err(): the pooled timer can fire a beat
		// before the context's own deadline timer flips Err.)
		if ctxBound {
			m.cl.counters.canceled.Add(1)
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, context.DeadlineExceeded
		}
		m.cl.counters.timeouts.Add(1)
		return nil, errTimeout
	case <-done:
		m.mu.Lock()
		delete(m.pending, id)
		m.mu.Unlock()
		m.cl.counters.canceled.Add(1)
		return nil, ctx.Err()
	case <-m.cl.closed:
		return nil, errClosed
	}
}

// roundTrip issues the request on a connection chosen round-robin, trying
// each pool member once while connections are down. Context errors are
// terminal: a cancelled request is not retried on another connection.
func (c *Client) roundTrip(ctx context.Context, frame []byte) ([]byte, error) {
	start := int(c.rr.Add(1))
	var lastErr error = errNotConnected
	for i := 0; i < len(c.conns); i++ {
		m := c.conns[(start+i)%len(c.conns)]
		resp, err := m.call(ctx, frame)
		if err == nil {
			if len(resp) > 0 && resp[0] == opErr {
				d := wire.NewDecoder(resp)
				d.Op()
				d.U32()
				return nil, errors.New(d.Str())
			}
			return resp, nil
		}
		lastErr = err
		if err == errClosed || err == errTimeout || (ctx != nil && ctx.Err() != nil) {
			break // no point retrying elsewhere
		}
	}
	return nil, lastErr
}

// Lookup implements Node over TCP. Network errors (and cancellation)
// degrade to a compulsory miss: the cache is an optimization, never
// required for correctness.
func (c *Client) Lookup(ctx context.Context, key string, lo, hi, origLo, origHi interval.Timestamp) LookupResult {
	c.counters.lookups.Add(1)
	e := newReq(opLookup)
	e.Str(key).U64(uint64(lo)).U64(uint64(hi)).U64(uint64(origLo)).U64(uint64(origHi))
	resp, err := c.roundTrip(ctx, e.Bytes())
	if err != nil {
		c.counters.lookupErrors.Add(1)
		return LookupResult{Miss: MissCompulsory}
	}
	d := wire.NewDecoder(resp)
	if d.Op() != opLookupResp {
		c.counters.lookupErrors.Add(1)
		return LookupResult{Miss: MissCompulsory}
	}
	d.U32() // request ID, already matched by the reader
	r, err := decodeLookupResult(d)
	if err != nil {
		c.counters.lookupErrors.Add(1)
		return LookupResult{Miss: MissCompulsory}
	}
	return r
}

// LookupBatch implements Node over TCP: all probes travel in one frame and
// return in one frame, preserving order. Transport errors degrade every
// probe to a compulsory miss.
func (c *Client) LookupBatch(ctx context.Context, reqs []BatchLookup) []LookupResult {
	if len(reqs) == 0 {
		return nil
	}
	if len(reqs) > MaxBatchLookup {
		out := make([]LookupResult, 0, len(reqs))
		for len(reqs) > 0 {
			n := len(reqs)
			if n > MaxBatchLookup {
				n = MaxBatchLookup
			}
			out = append(out, c.LookupBatch(ctx, reqs[:n])...)
			reqs = reqs[n:]
		}
		return out
	}
	c.counters.batchLookups.Add(1)
	c.counters.batchKeys.Add(uint64(len(reqs)))
	e := newReq(opLookupBatch)
	e.U32(uint32(len(reqs)))
	for _, q := range reqs {
		e.Str(q.Key).U64(uint64(q.Lo)).U64(uint64(q.Hi)).U64(uint64(q.OrigLo)).U64(uint64(q.OrigHi))
	}
	miss := func() []LookupResult {
		c.counters.lookupErrors.Add(1)
		out := make([]LookupResult, len(reqs))
		for i := range out {
			out[i] = LookupResult{Miss: MissCompulsory}
		}
		return out
	}
	resp, err := c.roundTrip(ctx, e.Bytes())
	if err != nil {
		return miss()
	}
	d := wire.NewDecoder(resp)
	if d.Op() != opLookupBatchResp {
		return miss()
	}
	d.U32() // request ID
	n := d.U32()
	if d.Err() != nil || int(n) != len(reqs) {
		return miss()
	}
	out := make([]LookupResult, 0, n)
	for i := uint32(0); i < n; i++ {
		r, err := decodeLookupResult(d)
		if err != nil {
			return miss()
		}
		out = append(out, r)
	}
	return out
}

// Put implements Node over TCP. The put is asynchronous: the frame enters a
// bounded queue drained by a background sender, so the caller never blocks
// on the network. Queue overflow drops the put (PutsDropped); write
// failures on every connection count as PutErrors. Use Flush to wait for
// the queue to drain.
func (c *Client) Put(key string, data []byte, iv interval.Interval, still bool, genSnap interval.Timestamp, tags []invalidation.TagID) {
	e := newReq(opPut) // request ID stays 0: fire-and-forget
	e.Str(key).U64(uint64(iv.Lo)).U64(uint64(iv.Hi)).Bool(still).U64(uint64(genSnap))
	e.U32(uint32(len(tags)))
	for _, id := range tags {
		t := invalidation.TagOf(id)
		e.Str(t.Table).Str(t.Key).Bool(t.Wildcard)
	}
	e.Blob(data)
	select {
	case c.putq <- putItem{frame: e.Bytes()}:
		c.counters.putsQueued.Add(1)
	default:
		c.counters.putsDropped.Add(1)
	}
}

// Flush blocks until every put queued before the call has been written (or
// failed and been counted). It returns early if the client is closed.
//
//lint:allow ctxflow compatibility wrapper; the drain is bounded by client Close, and FlushContext is the ctx-threading API
func (c *Client) Flush() { _ = c.FlushContext(context.Background()) }

// FlushContext is Flush with a drain deadline: it waits for the queue to
// drain until ctx ends, returning the context error if the deadline cut
// the drain short (queued puts are not discarded — the sender keeps
// working; the caller just stops waiting).
func (c *Client) FlushContext(ctx context.Context) error {
	ack := make(chan struct{})
	select {
	case c.putq <- putItem{ack: ack}:
	case <-c.closed:
		return errClosed
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case <-ack:
		return nil
	case <-c.closed:
		return errClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// putSender drains the async put queue in order.
func (c *Client) putSender() {
	defer c.wg.Done()
	for {
		select {
		case <-c.closed:
			return
		case it := <-c.putq:
			if it.ack != nil {
				close(it.ack)
				continue
			}
			if err := c.sendAsync(it.frame); err != nil {
				c.counters.putErrors.Add(1)
			} else {
				c.counters.putsSent.Add(1)
			}
		}
	}
}

// sendAsync writes a fire-and-forget frame on the first healthy connection.
func (c *Client) sendAsync(frame []byte) error {
	start := int(c.rr.Add(1))
	for i := 0; i < len(c.conns); i++ {
		m := c.conns[(start+i)%len(c.conns)]
		m.mu.Lock()
		conn := m.conn
		if conn == nil {
			m.mu.Unlock()
			continue
		}
		_ = conn.SetWriteDeadline(time.Now().Add(c.timeout))
		err := wire.WriteFrame(conn, frame)
		m.mu.Unlock()
		if err != nil {
			conn.Close() // reader notices and redials
			continue
		}
		return nil
	}
	return errNotConnected
}

// Stats implements Node over TCP. Transport errors return zero stats and
// are counted in ClientStats.CallErrors.
func (c *Client) Stats() Stats {
	// Node's Stats signature has no ctx to thread, so bound the round trip
	// here: a wedged node must not hang a monitoring poll forever.
	ctx, cancel := context.WithTimeout(context.Background(), DefaultCallTimeout)
	defer cancel()
	resp, err := c.roundTrip(ctx, newReq(opStats).Bool(false).Bytes())
	if err != nil {
		c.counters.callErrors.Add(1)
		return Stats{}
	}
	d := wire.NewDecoder(resp)
	if d.Op() != opStatsResp {
		c.counters.callErrors.Add(1)
		return Stats{}
	}
	d.U32() // request ID
	var st Stats
	st.Lookups = d.U64()
	st.Hits = d.U64()
	st.MissCompulsory = d.U64()
	st.MissConsistency = d.U64()
	st.MissStaleness = d.U64()
	st.MissCapacity = d.U64()
	st.Puts = d.U64()
	st.Invalidations = d.U64()
	st.Invalidated = d.U64()
	st.EvictedCapacity = d.U64()
	st.EvictedStale = d.U64()
	st.BytesUsed = d.I64()
	st.Versions = int(d.I64())
	st.Keys = int(d.I64())
	st.Horizon = interval.Timestamp(d.U64())
	return st
}

// WarmBoot implements the crash-recovery horizon push over TCP: the
// database daemon calls it on every cache node after recovering, before
// resuming the invalidation stream (see Server.WarmBoot for why a plain
// horizon seed is not enough after a crash). Acked like an invalidation
// push — a nil return means the node applied it.
func (c *Client) WarmBoot(ctx context.Context, ts interval.Timestamp, wall time.Time) error {
	e := newReq(opWarmBoot)
	e.U64(uint64(ts)).I64(wall.UnixNano())
	resp, err := c.roundTrip(ctx, e.Bytes())
	if err != nil {
		return err
	}
	if len(resp) == 0 || resp[0] != opAck {
		return fmt.Errorf("cacheserver: unexpected warm-boot response opcode %d", resp[0])
	}
	return nil
}

// ResetStats implements Node over TCP. Failures are counted in
// ClientStats.CallErrors rather than silently discarded.
func (c *Client) ResetStats() {
	ctx, cancel := context.WithTimeout(context.Background(), DefaultCallTimeout)
	defer cancel()
	if _, err := c.roundTrip(ctx, newReq(opStats).Bool(true).Bytes()); err != nil {
		c.counters.callErrors.Add(1)
	}
}

// PushInvalidation delivers one stream message to the node (used by the
// database daemon's stream fan-out) and waits for the node's ack: a nil
// return means the node applied (or had already applied) the message. A
// kernel-buffered write is not delivery, so an unacked push must be
// assumed lost — the stream owner retries it until acked; the node
// deduplicates by timestamp, so at-least-once in-order delivery is exactly
// the stream contract. ctx bounds one delivery attempt (the fan-out's
// retry loop passes its shutdown context so a dead node cannot wedge it).
// Pushes always use the first pool connection and the caller is expected
// to be a single goroutine per node, which preserves send order.
func (c *Client) PushInvalidation(ctx context.Context, m invalidation.Message) error {
	frame := m.Encode(opInval)
	// Splice a request-ID placeholder in after the opcode; call assigns it.
	tagged := make([]byte, 0, len(frame)+4)
	tagged = append(tagged, frame[0], 0, 0, 0, 0)
	tagged = append(tagged, frame[1:]...)
	resp, err := c.conns[0].call(ctx, tagged)
	if err != nil {
		return err
	}
	if len(resp) == 0 || resp[0] != opAck {
		if len(resp) > 0 && resp[0] == opErr {
			d := wire.NewDecoder(resp)
			d.Op()
			d.U32()
			return errors.New(d.Str())
		}
		return fmt.Errorf("cacheserver: unexpected push response opcode %d", resp[0])
	}
	return nil
}
