package cacheserver

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"txcache/internal/interval"
	"txcache/internal/invalidation"
)

// BenchmarkNodeContention drives one in-process cache node with the mixed
// workload a busy application tier generates: mostly lookups, a stream of
// still-valid puts, ordered invalidation messages, and the occasional
// monitoring poll — all from parallel goroutines (`-cpu 1,2,4` sweeps the
// contention axis). It measures the node's internal synchronization, not
// the wire: every operation is a direct method call, so any flat cost or
// scaling cliff here is lock structure, not protocol.
//
// The mix per 64 ops: 52 lookups, 8 puts, 3 invalidations, 1 stats poll.
// Timestamps come from one atomic counter so invalidation messages stay
// strictly ordered no matter which goroutine sends them; lookups probe a
// recent window so they hit the newest version fast (the realistic case —
// and the one where lock acquisition, not version scanning, dominates).
func BenchmarkNodeContention(b *testing.B) {
	const keys = 4096
	s := New(Config{
		// Budget ~2x the working set: eviction runs, but does not dominate.
		CapacityBytes: 2 * keys * (perVersionOverhead + 256 + 8),
	})
	payload := make([]byte, 256)
	tags := make([]invalidation.TagID, keys)
	benchKeys := make([]string, keys)
	for i := 0; i < keys; i++ {
		benchKeys[i] = fmt.Sprintf("key-%d", i)
		tags[i] = invalidation.Intern(invalidation.KeyTag("bench", "id", fmt.Sprint(i)))
		s.Put(benchKeys[i], payload,
			interval.Interval{Lo: interval.Timestamp(i + 1), Hi: interval.Infinity},
			true, interval.Timestamp(i+1), tags[i:i+1])
	}
	var ts atomic.Uint64
	ts.Store(1 << 20)
	s.ApplyInvalidation(invalidation.Message{TS: interval.Timestamp(ts.Load()), WallTime: time.Unix(0, 0)})
	var seed atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Per-goroutine splitmix64: deterministic, allocation-free, and not
		// part of what we want to measure.
		x := seed.Add(0x9e3779b97f4a7c15)
		next := func() uint64 {
			x += 0x9e3779b97f4a7c15
			z := x
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			return z ^ (z >> 31)
		}
		ctx := context.Background()
		for pb.Next() {
			r := next()
			k := int(r>>16) % keys
			switch r & 63 {
			case 0: // monitoring poll
				_ = s.Stats()
			case 1, 2, 3: // ordered invalidation of one key tag
				t := interval.Timestamp(ts.Add(1))
				s.ApplyInvalidation(invalidation.Message{TS: t, WallTime: time.Unix(0, 0), Tags: tags[k : k+1]})
			case 4, 5, 6, 7, 8, 9, 10, 11: // recompute + reinstall
				t := interval.Timestamp(ts.Add(1))
				s.Put(benchKeys[k], payload, interval.Interval{Lo: t, Hi: interval.Infinity}, true, t, tags[k:k+1])
			default: // lookup over a recent window
				now := interval.Timestamp(ts.Load())
				s.Lookup(ctx, benchKeys[k], now-(1<<18), now, 0, interval.Infinity)
			}
		}
	})
}
