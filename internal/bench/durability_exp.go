package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"txcache/internal/db"
	"txcache/internal/wal"
)

// Durability experiment: the three perf axes of the fast-durability work,
// measured end to end and emitted machine-readably.
//
//  1. Commit latency while a checkpoint streams a multi-megabyte table
//     (the streaming encoder releases the table lock every batch, so a
//     forced checkpoint should leave the commit tail intact).
//  2. Cold-start recovery wall time over a generated multi-table log,
//     serial (workers=1) vs parallel (workers=GOMAXPROCS).
//  3. Allocations per warmed-up durable commit (the pooled encode path).

// DurabilityResult is the JSON shape written by the Durability experiment
// (BENCH_durability.json via `make bench-durability`).
type DurabilityResult struct {
	Commits            int     `json:"commits"`
	CommitP50Micros    float64 `json:"commitP50Micros"`
	CommitP99Micros    float64 `json:"commitP99Micros"`
	CommitMaxMicros    float64 `json:"commitMaxMicros"`
	Checkpoints        uint64  `json:"checkpoints"`
	CheckpointRows     int     `json:"checkpointRows"`
	LogBytes           int64   `json:"logBytes"`
	RecoveryWorkers    int     `json:"recoveryWorkers"`
	RecoverySerialMs   float64 `json:"recoverySerialMs"`
	RecoveryParallelMs float64 `json:"recoveryParallelMs"`
	RecoverySpeedup    float64 `json:"recoverySpeedup"`
	AllocsPerCommit    float64 `json:"allocsPerCommit"`
}

// Durability runs the experiment and, when jsonPath is non-empty, writes
// the result there (plain JSON, overwritten in place).
func Durability(o Opts, logMB int, jsonPath string) (DurabilityResult, error) {
	o.fill()
	var res DurabilityResult

	// --- Axis 1: commit latency under a streaming checkpoint. ---
	dir, err := os.MkdirTemp("", "txcache-dur-exp-")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	e, _, err := db.Open(db.Options{VacuumEvery: -1, Durability: &db.DurabilityOptions{
		Dir: filepath.Join(dir, "ckpt"), Sync: wal.SyncNone, CheckpointBytes: -1,
	}})
	if err != nil {
		return res, err
	}
	if err := e.DDL("CREATE TABLE big (id BIGINT PRIMARY KEY, v BIGINT, s TEXT)"); err != nil {
		return res, err
	}
	const ckptRows = 60000
	res.CheckpointRows = ckptRows
	pad := strings.Repeat("x", 100)
	tx, err := e.Begin(false, 0)
	if err != nil {
		return res, err
	}
	for i := int64(0); i < ckptRows; i++ {
		if _, err := tx.Exec("INSERT INTO big (id, v, s) VALUES (?, ?, ?)", i, i, pad); err != nil {
			return res, err
		}
	}
	if _, err := tx.Commit(); err != nil {
		return res, err
	}
	done := make(chan error, 1)
	go func() {
		var err error
		for i := 0; i < 4 && err == nil; i++ {
			err = e.Checkpoint()
		}
		done <- err
	}()
	var lats []time.Duration
	i := int64(0)
	for finished := false; !finished; {
		select {
		case ckptErr := <-done:
			if ckptErr != nil {
				return res, ckptErr
			}
			finished = true
		default:
		}
		start := time.Now()
		tx, err := e.Begin(false, 0)
		if err != nil {
			return res, err
		}
		if _, err := tx.Exec("UPDATE big SET v = ? WHERE id = ?", i, i%ckptRows); err != nil {
			return res, err
		}
		if _, err := tx.Commit(); err != nil {
			return res, err
		}
		lats = append(lats, time.Since(start))
		i++
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	res.Commits = len(lats)
	res.CommitP50Micros = float64(lats[len(lats)/2].Microseconds())
	res.CommitP99Micros = float64(lats[len(lats)*99/100].Microseconds())
	res.CommitMaxMicros = float64(lats[len(lats)-1].Microseconds())
	res.Checkpoints = e.DurabilityStats().Checkpoints

	// --- Axis 3 (same engine): allocations per warmed-up durable commit. ---
	commit := func() {
		tx, err := e.Begin(false, 0)
		if err != nil {
			panic(err)
		}
		if _, err := tx.Exec("UPDATE big SET v = ? WHERE id = ?", int64(1), int64(7)); err != nil {
			panic(err)
		}
		if _, err := tx.Commit(); err != nil {
			panic(err)
		}
	}
	for w := 0; w < 8; w++ {
		commit()
	}
	res.AllocsPerCommit = testing.AllocsPerRun(300, commit)
	if err := e.Close(); err != nil {
		return res, err
	}

	// --- Axis 2: recovery wall time, serial vs parallel. ---
	logDir := filepath.Join(dir, "log")
	res.LogBytes, err = buildDurabilityLog(logDir, int64(logMB)<<20)
	if err != nil {
		return res, err
	}
	res.RecoveryWorkers = runtime.GOMAXPROCS(0)
	if res.RecoveryWorkers == 1 {
		res.RecoveryWorkers = 4 // still exercise the pool on a 1-CPU host
	}
	res.RecoverySerialMs, err = timeRecovery(dir, logDir, 1)
	if err != nil {
		return res, err
	}
	res.RecoveryParallelMs, err = timeRecovery(dir, logDir, res.RecoveryWorkers)
	if err != nil {
		return res, err
	}
	if res.RecoveryParallelMs > 0 {
		res.RecoverySpeedup = res.RecoverySerialMs / res.RecoveryParallelMs
	}

	o.printf("durability: %d commits under %d checkpoints of %d rows: p50 %.0fµs p99 %.0fµs max %.0fµs\n",
		res.Commits, res.Checkpoints, res.CheckpointRows,
		res.CommitP50Micros, res.CommitP99Micros, res.CommitMaxMicros)
	o.printf("durability: recovery of %.1f MB log: serial %.0fms, %d workers %.0fms (%.2fx)\n",
		float64(res.LogBytes)/(1<<20), res.RecoverySerialMs, res.RecoveryWorkers,
		res.RecoveryParallelMs, res.RecoverySpeedup)
	o.printf("durability: %.1f allocs per warmed durable commit\n", res.AllocsPerCommit)

	if jsonPath != "" {
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return res, err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return res, err
		}
		o.printf("durability: wrote %s\n", jsonPath)
	}
	return res, nil
}

// buildDurabilityLog populates dir with a multi-table WAL of at least
// targetBytes and leaves it un-checkpointed so recovery replays all of it.
func buildDurabilityLog(dir string, targetBytes int64) (int64, error) {
	e, _, err := db.Open(db.Options{VacuumEvery: -1, Durability: &db.DurabilityOptions{
		Dir: dir, Sync: wal.SyncNone, CheckpointBytes: -1,
	}})
	if err != nil {
		return 0, err
	}
	tables := []string{"r0", "r1", "r2", "r3", "r4", "r5"}
	for _, tn := range tables {
		if err := e.DDL(fmt.Sprintf(
			"CREATE TABLE %s (id BIGINT PRIMARY KEY, v BIGINT, s TEXT)", tn)); err != nil {
			return 0, err
		}
	}
	pad := strings.Repeat("p", 64)
	pk := int64(0)
	var size int64
	for size < targetBytes {
		tx, err := e.Begin(false, 0)
		if err != nil {
			return 0, err
		}
		for j := 0; j < 16; j++ {
			tn := tables[int(pk)%len(tables)]
			if _, err := tx.Exec(fmt.Sprintf(
				"INSERT INTO %s (id, v, s) VALUES (?, ?, ?)", tn), pk, pk*3, pad); err != nil {
				return 0, err
			}
			if prev := pk - int64(len(tables)); prev >= 0 {
				if _, err := tx.Exec(fmt.Sprintf(
					"UPDATE %s SET v = ? WHERE id = ?", tn), pk, prev); err != nil {
					return 0, err
				}
			}
			pk++
		}
		if _, err := tx.Commit(); err != nil {
			return 0, err
		}
		size = int64(e.DurabilityStats().WAL.Bytes)
	}
	// Deliberately no Close: a final checkpoint would collapse the log and
	// there would be nothing left to replay. The builder engine is simply
	// abandoned (its WAL data is already on the page cache / disk).
	return size, nil
}

// timeRecovery copies the prepared log directory (recovery mutates its
// input: opening appends a segment, Close checkpoints) and times db.Open
// with the given worker count.
func timeRecovery(scratch, logDir string, workers int) (float64, error) {
	cp, err := os.MkdirTemp(scratch, "rec-")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(cp)
	ents, err := os.ReadDir(logDir)
	if err != nil {
		return 0, err
	}
	for _, ent := range ents {
		blob, err := os.ReadFile(filepath.Join(logDir, ent.Name()))
		if err != nil {
			return 0, err
		}
		if err := os.WriteFile(filepath.Join(cp, ent.Name()), blob, 0o644); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	e, _, err := db.Open(db.Options{VacuumEvery: -1, Durability: &db.DurabilityOptions{
		Dir: cp, Sync: wal.SyncNone, CheckpointBytes: -1, RecoveryWorkers: workers,
	}})
	if err != nil {
		return 0, err
	}
	ms := float64(time.Since(start).Microseconds()) / 1000
	return ms, e.Close()
}
