// Package bench builds complete in-process TxCache deployments and drives
// the RUBiS workload against them, regenerating every figure and table of
// the paper's evaluation (§8). Experiments run in real time against the
// real engine; staleness limits are scaled by TimeScale because our scaled
// dataset sees the paper's per-object update rates compressed into
// seconds-long runs (see EXPERIMENTS.md).
package bench

import (
	"fmt"
	"sync"
	"time"

	"txcache/internal/cacheserver"
	"txcache/internal/clock"
	"txcache/internal/core"
	"txcache/internal/db"
	"txcache/internal/invalidation"
	"txcache/internal/pincushion"
	"txcache/internal/rubis"
)

// TimeScale maps paper-seconds to bench-seconds: the paper's hour-long runs
// against a full-size dataset become seconds-long runs against a 1/50-size
// dataset, so one paper-second of staleness corresponds to TimeScale bench
// seconds. All staleness knobs below are in PAPER seconds.
const TimeScale = 0.1

// scaled converts paper-seconds to a bench duration.
func scaled(paperSeconds float64) time.Duration {
	return time.Duration(paperSeconds * TimeScale * float64(time.Second))
}

// Mode selects the cache behavior under test (Figure 5's three lines).
type Mode int

// Modes.
const (
	// ModeBaseline runs RUBiS directly on the database, no cache.
	ModeBaseline Mode = iota
	// ModeTxCache is the full system.
	ModeTxCache
	// ModeNoConsistency keeps the invalidation machinery but reads any
	// sufficiently fresh version, ignoring consistency (§8.3).
	ModeNoConsistency
)

func (m Mode) String() string {
	return [...]string{"baseline", "txcache", "no-consistency"}[m]
}

// SiteConfig describes one deployment under test.
type SiteConfig struct {
	Mode Mode
	// Scale sizes the dataset; defaults to rubis.InMemoryScale.
	Scale rubis.Scale
	// CacheBytes is the total cache capacity across nodes; <= 0 unlimited.
	CacheBytes int64
	// CacheNodes is the number of cache servers (default 2).
	CacheNodes int
	// StalenessPaperSec is the BEGIN-RO staleness limit in paper seconds
	// (default 30, the paper's standard setting).
	StalenessPaperSec float64
	// Pool, when set, bounds the database buffer cache to model the
	// disk-bound configuration.
	Pool *db.PoolConfig
	// DisableValidityTracking turns off the database's TxCache support (to
	// measure its overhead against stock behavior).
	DisableValidityTracking bool
	// EagerVisibilityCheck reverts to stock scan ordering (visibility
	// before predicate), the ablation of §5.2's delayed-visibility-check
	// design choice: masks widen, validity intervals shrink, hit rate
	// drops.
	EagerVisibilityCheck bool
	// Mix selects the emulator's interaction mix; nil = the bidding mix.
	Mix *rubis.Mix
	// ExtraWriteIndexes adds up to len(WriteHotIndexes) secondary indexes
	// on the write-hot tables after load (the writeheavy experiment's
	// index-count knob; each one multiplies per-commit index maintenance).
	ExtraWriteIndexes int
	// Durability, when set, opens the engine with a write-ahead log in
	// Durability.Dir so experiments can price the fsync tax. Nil — the
	// default, and what every perf gate uses — keeps the engine purely in
	// memory so regression comparisons stay like-with-like
	// (the -durability=off escape hatch).
	Durability *db.DurabilityOptions
	Seed       int64
}

// WriteHotIndexes are additional secondary indexes on the tables the
// write-heavy mix hammers; SiteConfig.ExtraWriteIndexes applies a prefix.
// Range conditions never plan through them (the RUBiS queries probe by
// equality on the existing indexes), so their only effect is commit-path
// index maintenance — which is the point.
var WriteHotIndexes = []string{
	`CREATE INDEX bids_date ON bids (date)`,
	`CREATE INDEX bids_qty ON bids (qty)`,
	`CREATE INDEX comments_item ON comments (item_id)`,
	`CREATE INDEX comments_rating ON comments (rating)`,
	`CREATE INDEX buy_now_item ON buy_now (item_id)`,
	`CREATE INDEX items_end ON items (end_date)`,
}

// Site is a complete running deployment.
type Site struct {
	Cfg    SiteConfig
	Engine *db.Engine
	Bus    *invalidation.Bus
	PC     *pincushion.Pincushion
	Client *core.Client
	App    *rubis.App

	mu    sync.Mutex
	nodes []*cacheserver.Server // all servers ever part of the site (churn keeps retirees for stats)
	churn int                   // sequence number for churned-in node names

	stop chan struct{}
}

// Nodes snapshots the site's cache servers (including churned-out ones,
// whose counters remain part of the site totals).
func (s *Site) Nodes() []*cacheserver.Server {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*cacheserver.Server(nil), s.nodes...)
}

// BuildSite constructs and loads a deployment.
func BuildSite(cfg SiteConfig) (*Site, error) {
	if cfg.Scale.Users == 0 {
		cfg.Scale = rubis.InMemoryScale
	}
	if cfg.CacheNodes <= 0 {
		cfg.CacheNodes = 2
	}
	if cfg.StalenessPaperSec == 0 {
		cfg.StalenessPaperSec = 30
	}
	clk := clock.Real{}
	bus := invalidation.NewBus(false)
	engine, _, err := db.Open(db.Options{
		Clock: clk, Bus: bus, Pool: cfg.Pool,
		DisableValidityTracking: cfg.DisableValidityTracking,
		EagerVisibilityCheck:    cfg.EagerVisibilityCheck,
		Durability:              cfg.Durability,
	})
	if err != nil {
		return nil, err
	}
	pc := pincushion.New(pincushion.Config{
		Clock: clk,
		DB:    engine,
		// Retain pins for twice the staleness window (paper-scaled), but
		// let the sweeper trim unused pins as soon as they age past the
		// staleness bound itself — nothing can be handed such a pin again,
		// and holding it only drags the vacuum horizon.
		Retention: 2 * scaled(cfg.StalenessPaperSec+1),
		Staleness: scaled(cfg.StalenessPaperSec + 1),
	})

	s := &Site{Cfg: cfg, Engine: engine, Bus: bus, PC: pc, stop: make(chan struct{})}

	// The client is created before any data loads so that nodes joined via
	// AddNode subscribe to the invalidation stream before the first commit.
	s.Client = core.NewClient(core.Config{
		DB:                core.EngineDB{Engine: engine},
		Pincushion:        pc,
		Bus:               bus,
		Clock:             clk,
		FreshPinThreshold: scaled(5), // the paper's 5-second pin policy
		NoConsistency:     cfg.Mode == ModeNoConsistency,
	})
	if cfg.Mode != ModeBaseline {
		for i := 0; i < cfg.CacheNodes; i++ {
			s.addCacheNode(fmt.Sprintf("cache%d", i))
		}
	}

	ds, err := rubis.Load(engine, cfg.Scale, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	if n := cfg.ExtraWriteIndexes; n > 0 {
		if n > len(WriteHotIndexes) {
			n = len(WriteHotIndexes)
		}
		// CREATE INDEX after load exercises the bulk-build path.
		for _, ddl := range WriteHotIndexes[:n] {
			if err := engine.DDL(ddl); err != nil {
				return nil, err
			}
		}
	}
	// Seed each node's consistency horizon so still-valid entries are
	// servable from the start (nodes subscribed before load, so they have
	// replayed the stream; this is belt and braces for empty streams).
	for _, n := range s.Nodes() {
		n.SetHorizon(engine.LastCommit(), clk.Now())
	}

	s.App = rubis.NewApp(s.Client, ds)

	// Background maintenance: the pincushion sweeper (§5.4). Engine vacuum
	// needs no ticker anymore — the commit sequencer schedules incremental
	// passes itself from horizon-delta notifications (§5.1).
	go func() {
		t := time.NewTicker(scaled(2))
		defer t.Stop()
		for {
			select {
			case <-t.C:
				pc.Sweep()
			case <-s.stop:
				return
			}
		}
	}()
	return s, nil
}

// addCacheNode creates one cache server and joins it to the client's ring;
// core.Client.AddNode subscribes it to the invalidation stream.
func (s *Site) addCacheNode(name string) *cacheserver.Server {
	per := s.Cfg.CacheBytes
	if per > 0 {
		per /= int64(s.Cfg.CacheNodes)
	}
	n := cacheserver.New(cacheserver.Config{
		CapacityBytes: per,
		MaxStaleness:  2 * scaled(s.Cfg.StalenessPaperSec+1),
		Clock:         clock.Real{},
	})
	s.Client.AddNode(name, n)
	s.mu.Lock()
	s.nodes = append(s.nodes, n)
	s.mu.Unlock()
	return n
}

// StartChurn exercises live membership: every period, the most recently
// joined cache node is drained out of the ring and a fresh, cold node is
// joined in its place, while the workload keeps running. The returned stop
// function blocks until the churn loop exits.
func (s *Site) StartChurn(period time.Duration) (stop func()) {
	stopc := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		current := fmt.Sprintf("cache%d", s.Cfg.CacheNodes-1)
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-stopc:
				return
			case <-t.C:
			}
			s.Client.RemoveNode(current)
			s.mu.Lock()
			s.churn++
			current = fmt.Sprintf("churn%d", s.churn)
			s.mu.Unlock()
			n := s.addCacheNode(current)
			// A joining node cannot replay history it never saw; seed its
			// consistency horizon like an operator bootstrapping a node.
			n.SetHorizon(s.Engine.LastCommit(), time.Now())
		}
	}()
	return func() { close(stopc); <-done }
}

// Close stops background maintenance, drains the cache cluster (the
// client owns every node's stream subscription and closes them), and — on
// durable sites — flushes the WAL through a final checkpoint.
func (s *Site) Close() {
	close(s.stop)
	s.Client.Close()
	_ = s.Engine.Close() // no-op unless Cfg.Durability was set
}

// CacheStats sums the stats across cache nodes.
func (s *Site) CacheStats() cacheserver.Stats {
	var total cacheserver.Stats
	for _, n := range s.Nodes() {
		st := n.Stats()
		total.Lookups += st.Lookups
		total.Hits += st.Hits
		total.MissCompulsory += st.MissCompulsory
		total.MissConsistency += st.MissConsistency
		total.MissStaleness += st.MissStaleness
		total.MissCapacity += st.MissCapacity
		total.Puts += st.Puts
		total.Invalidations += st.Invalidations
		total.Invalidated += st.Invalidated
		total.EvictedCapacity += st.EvictedCapacity
		total.EvictedStale += st.EvictedStale
		total.BytesUsed += st.BytesUsed
		total.Versions += st.Versions
		total.Keys += st.Keys
	}
	return total
}

// ResetStats clears cache-node and library counters (after warmup).
func (s *Site) ResetStats() {
	for _, n := range s.Nodes() {
		n.ResetStats()
	}
}

// RunResult is one measured point.
type RunResult struct {
	Mode       Mode
	CacheBytes int64
	Staleness  float64 // paper seconds
	Throughput float64 // requests/second
	HitRate    float64 // library-observed cache hit rate
	Emu        rubis.EmulatorResult
	Cache      cacheserver.Stats
	// Database-side deltas over the measurement window (the writeheavy
	// experiment's primary metrics).
	DBCommits   uint64
	DBConflicts uint64
	DBVacuumed  uint64
}

// Run warms the site, resets counters, and measures for the given duration.
func (s *Site) Run(clients int, warm, measure time.Duration, seed int64) RunResult {
	staleness := scaled(s.Cfg.StalenessPaperSec)
	rubis.RunEmulator(s.App, rubis.EmulatorConfig{
		Clients: clients, Staleness: staleness, Duration: warm, Seed: seed, Mix: s.Cfg.Mix,
	})
	s.ResetStats()
	db0 := s.Engine.Stats()
	res := rubis.RunEmulator(s.App, rubis.EmulatorConfig{
		Clients: clients, Staleness: staleness, Duration: measure, Seed: seed + 1, Mix: s.Cfg.Mix,
	})
	db1 := s.Engine.Stats()
	cs := s.CacheStats()
	hr := 0.0
	if l := cs.Lookups; l > 0 {
		hr = float64(cs.Hits) / float64(l)
	}
	return RunResult{
		Mode:        s.Cfg.Mode,
		CacheBytes:  s.Cfg.CacheBytes,
		Staleness:   s.Cfg.StalenessPaperSec,
		Throughput:  res.Throughput(),
		HitRate:     hr,
		Emu:         res,
		Cache:       cs,
		DBCommits:   db1.Commits - db0.Commits,
		DBConflicts: db1.Conflicts - db0.Conflicts,
		DBVacuumed:  db1.Vacuumed - db0.Vacuumed,
	}
}
