package bench

import (
	"os"
	"testing"
	"time"

	"txcache/internal/rubis"
)

// quickOpts keeps harness tests fast; shape checks use generous margins.
func quickOpts() Opts {
	return Opts{
		Clients: 8,
		Warm:    300 * time.Millisecond,
		Measure: 700 * time.Millisecond,
		Scale:   rubis.TestScale,
		Seed:    1,
		Out:     os.Stderr,
	}
}

func TestBuildAndRunSite(t *testing.T) {
	site, err := BuildSite(SiteConfig{Mode: ModeTxCache, Scale: rubis.TestScale, CacheBytes: 4 << 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer site.Close()
	r := site.Run(4, 200*time.Millisecond, 400*time.Millisecond, 5)
	if r.Throughput <= 0 {
		t.Fatalf("no throughput: %+v", r)
	}
	if r.Emu.Errors > 0 {
		t.Fatalf("emulator errors: %+v", r.Emu)
	}
	if r.HitRate == 0 {
		t.Fatal("cache never hit")
	}
}

// TestCacheBeatsBaseline is the headline shape of Figure 5: TxCache with a
// big cache must outperform the no-cache baseline.
func TestCacheBeatsBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	o := quickOpts()

	base, err := BuildSite(SiteConfig{Mode: ModeBaseline, Scale: o.Scale, Seed: o.Seed})
	if err != nil {
		t.Fatal(err)
	}
	baseRes := base.Run(o.Clients, o.Warm, o.Measure, o.Seed)
	base.Close()

	cached, err := BuildSite(SiteConfig{Mode: ModeTxCache, Scale: o.Scale, CacheBytes: 16 << 20, Seed: o.Seed})
	if err != nil {
		t.Fatal(err)
	}
	cachedRes := cached.Run(o.Clients, o.Warm, o.Measure, o.Seed)
	cached.Close()

	t.Logf("baseline %.0f req/s, txcache %.0f req/s (%.2fx), hit rate %.1f%%",
		baseRes.Throughput, cachedRes.Throughput,
		cachedRes.Throughput/baseRes.Throughput, 100*cachedRes.HitRate)
	if cachedRes.Throughput < baseRes.Throughput {
		t.Fatalf("TxCache (%.0f req/s) slower than baseline (%.0f req/s)",
			cachedRes.Throughput, baseRes.Throughput)
	}
}

func TestFigure8Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	o := quickOpts()
	o.Warm, o.Measure = 200*time.Millisecond, 400*time.Millisecond
	rows, err := Figure8(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("want 4 configs, got %d", len(rows))
	}
	for _, r := range rows {
		sum := r.Compulsory + r.StaleCap + r.Consistency
		if sum > 0 && (sum < 99 || sum > 101) {
			t.Fatalf("%s: breakdown sums to %.1f%%", r.Label, sum)
		}
	}
}
