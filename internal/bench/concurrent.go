package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"txcache/internal/db"
)

// ConcurrencyResult is one point of the engine-concurrency experiment.
type ConcurrencyResult struct {
	Writers       int
	CommitsPerSec float64
	ReadsPerSec   float64
}

// Concurrency measures the database engine's commit path directly (no
// cache tier): commit throughput with N writers on disjoint tables, and
// read throughput on a separate hot table measured while those commits
// proceed. Under an engine-wide commit lock the read series collapses as
// writers are added; under per-table locking with the pipelined commit
// sequencer, readers of an untouched table are unaffected. This is the
// repo's multi-core engine-scaling trajectory (ROADMAP north star), not a
// paper figure.
func Concurrency(o Opts) ([]ConcurrencyResult, error) {
	o.fill()
	o.printf("# Engine concurrency: disjoint-table commits + disjoint readers\n")
	o.printf("%8s %12s %12s\n", "writers", "commits/s", "reads/s")
	var out []ConcurrencyResult
	for _, writers := range []int{1, 2, 4, 8} {
		r, err := concurrencyPoint(writers, o.Clients, o.Measure)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
		o.printf("%8d %12.0f %12.0f\n", r.Writers, r.CommitsPerSec, r.ReadsPerSec)
	}
	return out, nil
}

func concurrencyPoint(writers, readers int, measure time.Duration) (ConcurrencyResult, error) {
	const hotRows = 512
	e := db.New(db.Options{})
	for i := 0; i < writers; i++ {
		if err := e.DDL(fmt.Sprintf(`CREATE TABLE shard%d (id BIGINT PRIMARY KEY, v BIGINT)`, i)); err != nil {
			return ConcurrencyResult{}, err
		}
	}
	if err := e.DDL(`CREATE TABLE hot (id BIGINT PRIMARY KEY, v BIGINT)`); err != nil {
		return ConcurrencyResult{}, err
	}
	tx, err := e.Begin(false, 0)
	if err != nil {
		return ConcurrencyResult{}, err
	}
	for i := 0; i < hotRows; i++ {
		if _, err := tx.Exec("INSERT INTO hot (id, v) VALUES (?, ?)", int64(i), int64(i)); err != nil {
			return ConcurrencyResult{}, err
		}
	}
	if _, err := tx.Commit(); err != nil {
		return ConcurrencyResult{}, err
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var commits, reads atomic.Int64
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := fmt.Sprintf("INSERT INTO shard%d (id, v) VALUES (?, ?)", w)
			for id := int64(0); ; id++ {
				select {
				case <-stop:
					return
				default:
				}
				tx, err := e.Begin(false, 0)
				if err != nil {
					fail(err)
					return
				}
				if _, err := tx.Exec(src, id, id); err != nil {
					tx.Abort()
					fail(err)
					return
				}
				if _, err := tx.Commit(); err != nil {
					fail(err)
					return
				}
				commits.Add(1)
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := int64(r); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tx, err := e.Begin(true, 0)
				if err != nil {
					fail(err)
					return
				}
				if _, err := tx.Query("SELECT v FROM hot WHERE id = ?", i%hotRows); err != nil {
					tx.Abort()
					fail(err)
					return
				}
				tx.Abort()
				reads.Add(1)
			}
		}(r)
	}
	time.Sleep(measure)
	close(stop)
	wg.Wait()
	if firstErr != nil {
		return ConcurrencyResult{}, firstErr
	}
	sec := measure.Seconds()
	return ConcurrencyResult{
		Writers:       writers,
		CommitsPerSec: float64(commits.Load()) / sec,
		ReadsPerSec:   float64(reads.Load()) / sec,
	}, nil
}
