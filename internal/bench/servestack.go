package bench

import (
	"context"
	"fmt"
	"net"
	"time"

	"txcache/internal/cacheserver"
	"txcache/internal/clock"
	"txcache/internal/core"
	"txcache/internal/db"
	"txcache/internal/db/dbnet"
	"txcache/internal/invalidation"
	"txcache/internal/pincushion"
	"txcache/internal/rubis"
	"txcache/internal/serve"
)

// ServeStackConfig sizes a full-TCP deployment with an HTTP front end.
type ServeStackConfig struct {
	// Scale sizes the RUBiS dataset (default rubis.TestScale).
	Scale rubis.Scale
	// WikiPages seeds the wiki subset; 0 disables it.
	WikiPages int
	// CacheNodes is the cache-server count (default 2).
	CacheNodes int
	// CacheBytes is total cache capacity; <= 0 unlimited.
	CacheBytes int64
	// MaxInFlight / MaxQueue / RequestTimeout tune the server's admission
	// control (zero values take serve's defaults).
	MaxInFlight, MaxQueue int
	RequestTimeout        time.Duration
	// Staleness is the page staleness bound (default 10s).
	Staleness time.Duration
	Seed      int64
}

// ServeStack is the paper's Figure-1 topology with an application server in
// front, every hop over real loopback TCP: HTTP clients → txcache-serve →
// {cache nodes, database daemon, pincushion}, plus the daemon's invalidation
// push streams back to the nodes. Tests and the serve experiment boot one,
// load it, and tear it down leak-free.
type ServeStack struct {
	Engine *db.Engine
	Client *core.Client
	App    *rubis.App
	Wiki   *serve.Wiki
	Srv    *serve.Server
	URL    string

	pc      *pincushion.Pincushion
	closers []func() // LIFO teardown: clients, listeners, subscriptions
}

// StartServeStack boots the whole topology on ephemeral loopback ports.
func StartServeStack(cfg ServeStackConfig) (st *ServeStack, err error) {
	if cfg.Scale.Users == 0 {
		cfg.Scale = rubis.TestScale
	}
	if cfg.CacheNodes <= 0 {
		cfg.CacheNodes = 2
	}
	if cfg.Staleness <= 0 {
		cfg.Staleness = 10 * time.Second
	}
	st = &ServeStack{}
	defer func() {
		if err != nil {
			st.closeAll()
		}
	}()
	listen := func() (net.Listener, error) {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		st.closers = append(st.closers, func() { l.Close() })
		return l, nil
	}

	clk := clock.Real{}
	bus := invalidation.NewBus(false)
	st.Engine = db.New(db.Options{Clock: clk, Bus: bus})

	// Cache nodes, each with its own TCP listener and an invalidation push
	// stream from the daemon (the txcache-dbd fan-out, in-process): acked,
	// retried, in-order — at-least-once delivery the node's timestamp dedup
	// turns into exactly-once.
	nodes := map[string]cacheserver.Node{}
	per := cfg.CacheBytes
	if per > 0 {
		per /= int64(cfg.CacheNodes)
	}
	for i := 0; i < cfg.CacheNodes; i++ {
		node := cacheserver.New(cacheserver.Config{
			CapacityBytes: per,
			MaxStaleness:  2 * (cfg.Staleness + time.Second),
			Clock:         clk,
		})
		l, lerr := listen()
		if lerr != nil {
			return nil, lerr
		}
		go node.Serve(l)

		pushCl, derr := cacheserver.Dial(l.Addr().String(), 1)
		if derr != nil {
			return nil, derr
		}
		sub := bus.Subscribe()
		go func() {
			for m := range sub.C {
				for {
					pctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					perr := pushCl.PushInvalidation(pctx, m)
					cancel()
					if perr == nil {
						break
					}
					time.Sleep(20 * time.Millisecond)
				}
			}
		}()
		// Close the subscription before the push client so the fan-out
		// goroutine drains and exits rather than retrying into a closed pool.
		st.closers = append(st.closers, pushCl.Close, sub.Close)

		cn, derr := cacheserver.Dial(l.Addr().String(), 4)
		if derr != nil {
			return nil, derr
		}
		st.closers = append(st.closers, cn.Close)
		nodes[fmt.Sprintf("cache%d", i)] = cn
	}

	// Database daemon.
	dbL, err := listen()
	if err != nil {
		return nil, err
	}
	go (&dbnet.Server{Engine: st.Engine}).Serve(dbL)
	dbClient, err := dbnet.Dial(dbL.Addr().String(), 8)
	if err != nil {
		return nil, err
	}
	st.closers = append(st.closers, dbClient.Close)

	// Pincushion daemon, itself a dbnet client for pin placement.
	pcDB, err := dbnet.Dial(dbL.Addr().String(), 2)
	if err != nil {
		return nil, err
	}
	st.closers = append(st.closers, pcDB.Close)
	st.pc = pincushion.New(pincushion.Config{
		Clock: clk, DB: pcDB,
		Retention: 2 * (cfg.Staleness + time.Second),
		Staleness: cfg.Staleness + time.Second,
	})
	pcL, err := listen()
	if err != nil {
		return nil, err
	}
	go st.pc.Serve(pcL)
	pcClient, err := pincushion.Dial(pcL.Addr().String(), 4)
	if err != nil {
		return nil, err
	}
	st.closers = append(st.closers, pcClient.Close)

	st.Client = core.NewClient(core.Config{
		DB:         dbClient,
		Nodes:      nodes,
		Pincushion: pcClient,
		Clock:      clk,
	})
	st.closers = append(st.closers, st.Client.Close)

	// Load engine-side (dbnet carries no DDL), with the nodes already
	// subscribed so they replay every load commit.
	if _, err := rubis.Load(st.Engine, cfg.Scale, cfg.Seed+1); err != nil {
		return nil, err
	}
	if cfg.WikiPages > 0 {
		if err := serve.LoadWiki(st.Engine, cfg.WikiPages, time.Now().Unix()); err != nil {
			return nil, err
		}
	}

	// The application server recovers its dataset over the wire, exactly as
	// the standalone txcache-serve binary does against a remote daemon.
	actx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ds, err := rubis.Attach(actx, st.Client)
	if err != nil {
		return nil, fmt.Errorf("bench: attach: %w", err)
	}
	st.App = rubis.NewApp(st.Client, ds)
	if cfg.WikiPages > 0 {
		st.Wiki, err = serve.AttachWiki(actx, st.Client)
		if err != nil {
			return nil, fmt.Errorf("bench: attach wiki: %w", err)
		}
	}

	st.Srv = serve.New(serve.Config{
		App: st.App, Wiki: st.Wiki,
		MaxInFlight:    cfg.MaxInFlight,
		MaxQueue:       cfg.MaxQueue,
		RequestTimeout: cfg.RequestTimeout,
		Staleness:      cfg.Staleness,
	})
	httpL, err := listen()
	if err != nil {
		return nil, err
	}
	st.URL = "http://" + httpL.Addr().String()
	go st.Srv.Serve(httpL)
	return st, nil
}

// Stop drains the HTTP server, tears every connection and listener down,
// and then insists the database end up with zero pinned snapshots — a
// leaked pin would silently block vacuum forever, so teardown treats it as
// an error, sweeping the pincushion until the pins expire or ctx gives up.
func (s *ServeStack) Stop(ctx context.Context) error {
	var firstErr error
	if s.Srv != nil {
		if err := s.Srv.Drain(ctx); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("drain: %w", err)
		}
	}
	// Force-unpin while the pincushion's database connection is still open;
	// after the drain no transaction can be using these snapshots.
	for s.Engine.Stats().PinnedSnaps > 0 {
		if ctx.Err() != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("pin leak: %d snapshots still pinned at teardown", s.Engine.Stats().PinnedSnaps)
			}
			break
		}
		s.pc.SweepAll()
		time.Sleep(5 * time.Millisecond)
	}
	s.closeAll()
	return firstErr
}

// closeAll runs the teardown stack in LIFO order.
func (s *ServeStack) closeAll() {
	for i := len(s.closers) - 1; i >= 0; i-- {
		s.closers[i]()
	}
	s.closers = nil
}
