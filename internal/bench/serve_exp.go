package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"txcache/internal/loadgen"
	"txcache/internal/serve"
)

// ServeOpts configures the serve experiment: an open-loop load run against
// the HTTP application server, with a closed-loop comparator at the same
// nominal rate so the coordinated-omission gap is visible in one table.
type ServeOpts struct {
	Opts

	// Rate is the nominal open-loop arrival rate in requests/second
	// (default 500).
	Rate float64
	// Burst switches the open-loop schedule from Poisson to a square wave
	// (2×Rate for half of each second) with the same nominal rate.
	Burst bool
	// Workers caps the open-loop in-flight concurrency (default 256); it
	// bounds resources, not the arrival schedule.
	Workers int
	// ChurnEvery closes a worker's connection every N requests; 0 disables.
	ChurnEvery int

	// URL targets an already-running txcache-serve instead of booting an
	// in-process full-TCP stack.
	URL string
	// Stack tunes the in-process stack when URL is empty.
	Stack ServeStackConfig
}

func (o *ServeOpts) fill() {
	o.Opts.fill()
	if o.Rate <= 0 {
		o.Rate = 500
	}
	if o.Workers <= 0 {
		o.Workers = 256
	}
	if o.Stack.WikiPages == 0 {
		o.Stack.WikiPages = 20
	}
}

// serveViolations reads the server's consistency-violation counter off
// /statsz, the same way an external monitor would.
func serveViolations(ctx context.Context, baseURL string) (uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/statsz", nil)
	if err != nil {
		return 0, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var body struct {
		Serve serve.StatsSnapshot `json:"serve"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return 0, err
	}
	return body.Serve.Violations, nil
}

// Serve is the open-loop experiment: production-style load (arrivals on a
// wall-clock schedule, latency from intended send time) against the real
// HTTP server over real TCP, then a closed-loop run at the same nominal
// rate. The two rows disagree exactly where coordinated omission hides —
// the closed loop's high percentiles only see requests it deigned to send.
func Serve(o ServeOpts) (open, closed *loadgen.Result, err error) {
	o.fill()

	url := o.URL
	if url == "" {
		o.Stack.Scale = o.Scale
		o.Stack.Seed = o.Seed
		st, serr := StartServeStack(o.Stack)
		if serr != nil {
			return nil, nil, serr
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if serr := st.Stop(ctx); serr != nil && err == nil {
				err = fmt.Errorf("bench: stack teardown: %w", serr)
			}
		}()
		url = st.URL
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	ranges, err := loadgen.ProbeRanges(ctx, url)
	cancel()
	if err != nil {
		return nil, nil, fmt.Errorf("bench: probe %s: %w", url, err)
	}

	var sched loadgen.Schedule
	if o.Burst {
		sched = loadgen.Burst{Peak: 2 * o.Rate, Period: time.Second, Duty: 500 * time.Millisecond}
	} else {
		sched = loadgen.Poisson{PerSec: o.Rate}
	}

	o.printf("# Serve: open-loop vs closed-loop at the same nominal rate\n")
	o.printf("# target %s, dataset %+v\n", url, ranges)
	o.printf("%-12s %9s %9s %9s %9s %9s %7s %7s\n",
		"loop", "rate", "done/s", "p50", "p99", "p999", "sheds", "errs")

	target := loadgen.NewHTTPTarget(url, ranges, o.Workers, o.ChurnEvery)
	defer target.Close()

	open = loadgen.Run(target, loadgen.Config{
		Schedule: sched,
		Duration: o.Warm + o.Measure,
		Warmup:   o.Warm,
		Workers:  o.Workers,
		Seed:     o.Seed,
	})
	row := func(name string, r *loadgen.Result) {
		s := r.Intended.Summarize()
		o.printf("%-12s %9.0f %9.0f %9v %9v %9v %7d %7d\n",
			name, r.Nominal, r.Throughput(), s.P50, s.P99, s.P999, r.Sheds, r.Errors)
	}
	openName := "open/poisson"
	if o.Burst {
		openName = "open/burst"
	}
	row(openName, open)

	// Closed-loop comparator: the same client population, but each waits for
	// its response before thinking — Clients/Think targets the same nominal
	// rate, yet the schedule now stretches whenever the server stalls.
	think := time.Duration(float64(o.Clients) / o.Rate * float64(time.Second))
	closed = loadgen.RunClosed(target, loadgen.ClosedConfig{
		Clients:  o.Clients,
		Think:    think,
		Duration: o.Warm + o.Measure,
		Warmup:   o.Warm,
		Seed:     o.Seed + 1,
	})
	row("closed", closed)

	ctx, cancel = context.WithTimeout(context.Background(), 10*time.Second)
	v, verr := serveViolations(ctx, url)
	cancel()
	if verr != nil {
		return open, closed, fmt.Errorf("bench: statsz after run: %w", verr)
	}
	if v > 0 {
		return open, closed, fmt.Errorf("bench: %d consistency violations during serve run", v)
	}
	return open, closed, nil
}
