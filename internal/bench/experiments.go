package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"txcache/internal/db"
	"txcache/internal/rubis"
)

// Opts are shared experiment knobs.
type Opts struct {
	// Clients is the closed-loop population per run; peak throughput in a
	// closed loop is reached once the bottleneck saturates, so a population
	// of a few times GOMAXPROCS suffices.
	Clients int
	// Warm and Measure are per-point durations.
	Warm    time.Duration
	Measure time.Duration
	// Scale overrides the dataset size (tests use rubis.TestScale).
	Scale rubis.Scale
	Seed  int64
	// Out receives the printed rows; nil discards them.
	Out io.Writer
	// Durability, when set, opens every site's engine with a write-ahead
	// log: each BuildSite gets its own fresh directory under Durability.Dir
	// (two engines cannot share a log). Nil — the default, and the
	// -durability=off escape hatch — keeps the engines purely in memory so
	// regression gates compare like with like.
	Durability *db.DurabilityOptions
}

func (o *Opts) fill() {
	if o.Clients <= 0 {
		o.Clients = 16
	}
	if o.Warm <= 0 {
		o.Warm = 2 * time.Second
	}
	if o.Measure <= 0 {
		o.Measure = 3 * time.Second
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
}

func (o *Opts) printf(format string, args ...any) {
	fmt.Fprintf(o.Out, format, args...)
}

// site builds one deployment, stamping the shared durability knob onto its
// config first: each site writes its log under a fresh subdirectory of
// Opts.Durability.Dir.
func (o *Opts) site(cfg SiteConfig) (*Site, error) {
	if o.Durability != nil {
		dir, err := os.MkdirTemp(o.Durability.Dir, "site-")
		if err != nil {
			return nil, err
		}
		d := *o.Durability
		d.Dir = dir
		cfg.Durability = &d
	}
	return BuildSite(cfg)
}

// CacheSizesInMemory is the Figure 5(a)/6(a) sweep. The paper used
// 64 MB–1 GB against an 850 MB dataset; ours are scaled ~1/50 with the
// dataset (see EXPERIMENTS.md).
var CacheSizesInMemory = []int64{256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20}

// CacheSizesDiskBound is the Figure 5(b)/6(b) sweep. The paper's smallest
// point is already 1/6 of its dataset (1 GB of 6 GB), so ours starts at a
// comparable fraction of the cacheable working set.
var CacheSizesDiskBound = []int64{2 << 20, 4 << 20, 8 << 20, 16 << 20, 32 << 20}

// DiskPool models the disk-bound configuration: the buffer cache holds a
// small fraction of the heap pages and each fault pays a sub-millisecond
// "seek" (scaled from commodity-disk latency like everything else).
func DiskPool() *db.PoolConfig {
	return &db.PoolConfig{CapacityPages: 32, MissPenalty: 800 * time.Microsecond}
}

// Baseline measures RUBiS with no cache, on stock-equivalent and modified
// databases, for the in-memory and disk-bound configurations (§8.1's
// baseline numbers and the validity-tracking-overhead claim).
func Baseline(o Opts) (map[string]RunResult, error) {
	o.fill()
	out := map[string]RunResult{}
	configs := []struct {
		name    string
		pool    *db.PoolConfig
		disable bool
	}{
		{"in-memory/modified", nil, false},
		{"in-memory/stock", nil, true},
		{"disk-bound/modified", DiskPool(), false},
	}
	o.printf("# Baseline: RUBiS directly on the database (no cache)\n")
	o.printf("%-22s %12s\n", "config", "req/s")
	for _, c := range configs {
		site, err := o.site(SiteConfig{
			Mode: ModeBaseline, Scale: o.Scale, Pool: c.pool,
			DisableValidityTracking: c.disable, Seed: o.Seed,
		})
		if err != nil {
			return nil, err
		}
		r := site.Run(o.Clients, o.Warm, o.Measure, o.Seed)
		site.Close()
		out[c.name] = r
		o.printf("%-22s %12.0f\n", c.name, r.Throughput)
	}
	return out, nil
}

// Figure5a regenerates Figure 5(a): peak throughput vs cache size on the
// in-memory database, for TxCache, the no-consistency comparator, and the
// no-cache baseline.
func Figure5a(o Opts) (map[string][]RunResult, error) {
	return figure5(o, nil, CacheSizesInMemory, true)
}

// Figure5b regenerates Figure 5(b): peak throughput vs cache size on the
// disk-bound database (TxCache and baseline; the paper found the
// no-consistency line indistinguishable here).
func Figure5b(o Opts) (map[string][]RunResult, error) {
	if o.Scale.Users == 0 {
		o.Scale = rubis.DiskBoundScale
	}
	return figure5(o, DiskPool(), CacheSizesDiskBound, false)
}

func figure5(o Opts, pool *db.PoolConfig, sizes []int64, withNoCon bool) (map[string][]RunResult, error) {
	o.fill()
	out := map[string][]RunResult{}

	base, err := o.site(SiteConfig{Mode: ModeBaseline, Scale: o.Scale, Pool: pool, Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	baseRes := base.Run(o.Clients, o.Warm, o.Measure, o.Seed)
	base.Close()
	out["baseline"] = []RunResult{baseRes}
	o.printf("# Figure 5: peak throughput vs cache size (30s staleness)\n")
	o.printf("%-16s %12s %12s %8s\n", "cache size", "mode", "req/s", "hit%")
	o.printf("%-16s %12s %12.0f %8s\n", "-", "baseline", baseRes.Throughput, "-")

	modes := []Mode{ModeTxCache}
	if withNoCon {
		modes = append(modes, ModeNoConsistency)
	}
	for _, size := range sizes {
		for _, mode := range modes {
			site, err := o.site(SiteConfig{Mode: mode, Scale: o.Scale, Pool: pool, CacheBytes: size, Seed: o.Seed})
			if err != nil {
				return nil, err
			}
			r := site.Run(o.Clients, o.Warm, o.Measure, o.Seed)
			site.Close()
			out[mode.String()] = append(out[mode.String()], r)
			o.printf("%-16s %12s %12.0f %7.1f%%\n", fmtBytes(size), mode, r.Throughput, 100*r.HitRate)
		}
	}
	return out, nil
}

// Figure6 regenerates Figure 6: cache hit rate vs cache size. The data
// comes from the same runs as Figure 5; this entry point reruns just the
// TxCache line and prints the hit-rate series.
func Figure6(o Opts, diskBound bool) ([]RunResult, error) {
	o.fill()
	sizes := CacheSizesInMemory
	var pool *db.PoolConfig
	if diskBound {
		sizes = CacheSizesDiskBound
		pool = DiskPool()
		if o.Scale.Users == 0 {
			o.Scale = rubis.DiskBoundScale
		}
	}
	which := "6(a) in-memory"
	if diskBound {
		which = "6(b) disk-bound"
	}
	o.printf("# Figure %s: hit rate vs cache size (30s staleness)\n", which)
	o.printf("%-16s %8s\n", "cache size", "hit%")
	var out []RunResult
	for _, size := range sizes {
		site, err := o.site(SiteConfig{Mode: ModeTxCache, Scale: o.Scale, Pool: pool, CacheBytes: size, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		r := site.Run(o.Clients, o.Warm, o.Measure, o.Seed)
		site.Close()
		out = append(out, r)
		o.printf("%-16s %7.1f%%\n", fmtBytes(size), 100*r.HitRate)
	}
	return out, nil
}

// StalenessPoints is the Figure 7 sweep, in paper seconds.
var StalenessPoints = []float64{1, 5, 10, 20, 30, 60, 120}

// Figure7 regenerates Figure 7: relative throughput vs staleness limit for
// the in-memory configuration (plus baseline = 1.0).
func Figure7(o Opts, cacheBytes int64) ([]RunResult, error) {
	o.fill()
	if cacheBytes <= 0 {
		cacheBytes = 2 << 20
	}
	base, err := o.site(SiteConfig{Mode: ModeBaseline, Scale: o.Scale, Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	baseRes := base.Run(o.Clients, o.Warm, o.Measure, o.Seed)
	base.Close()

	o.printf("# Figure 7: throughput vs staleness limit (cache %s)\n", fmtBytes(cacheBytes))
	o.printf("%-14s %12s %10s %8s\n", "staleness(s)", "req/s", "vs base", "hit%")
	o.printf("%-14s %12.0f %10s %8s\n", "baseline", baseRes.Throughput, "1.00x", "-")
	out := []RunResult{baseRes}
	for _, st := range StalenessPoints {
		site, err := o.site(SiteConfig{
			Mode: ModeTxCache, Scale: o.Scale, CacheBytes: cacheBytes,
			StalenessPaperSec: st, Seed: o.Seed,
		})
		if err != nil {
			return nil, err
		}
		r := site.Run(o.Clients, o.Warm, o.Measure, o.Seed)
		site.Close()
		out = append(out, r)
		o.printf("%-14.0f %12.0f %9.2fx %7.1f%%\n", st, r.Throughput,
			r.Throughput/baseRes.Throughput, 100*r.HitRate)
	}
	return out, nil
}

// MissBreakdown is one Figure 8 column.
type MissBreakdown struct {
	Label       string
	Compulsory  float64
	StaleCap    float64 // staleness + capacity merged, as the paper reports
	Consistency float64
	// Our cache can split the merged column:
	Staleness float64
	Capacity  float64
}

// Figure8 regenerates the miss-type breakdown table for the paper's four
// configurations.
func Figure8(o Opts) ([]MissBreakdown, error) {
	o.fill()
	diskScale := o.Scale
	if diskScale.Users == 0 {
		diskScale = rubis.DiskBoundScale
	}
	configs := []struct {
		label     string
		scale     rubis.Scale
		pool      *db.PoolConfig
		bytes     int64
		staleness float64
	}{
		{"in-mem 512K/30s", o.Scale, nil, 2 << 20, 30},
		{"in-mem 512K/15s", o.Scale, nil, 2 << 20, 15},
		{"in-mem 64K/30s", o.Scale, nil, 256 << 10, 30},
		{"disk 9G/30s", diskScale, DiskPool(), 16 << 20, 30},
	}
	var out []MissBreakdown
	o.printf("# Figure 8: breakdown of cache misses by type (%% of total misses)\n")
	o.printf("%-18s %11s %11s %12s %11s %10s\n", "config", "compulsory", "stale/cap", "consistency", "(stale)", "(capacity)")
	for _, c := range configs {
		site, err := o.site(SiteConfig{
			Mode: ModeTxCache, Scale: c.scale, Pool: c.pool,
			CacheBytes: c.bytes, StalenessPaperSec: c.staleness, Seed: o.Seed,
		})
		if err != nil {
			return nil, err
		}
		r := site.Run(o.Clients, o.Warm, o.Measure, o.Seed)
		site.Close()
		cs := r.Cache
		total := float64(cs.Misses())
		if total == 0 {
			total = 1
		}
		mb := MissBreakdown{
			Label:       c.label,
			Compulsory:  100 * float64(cs.MissCompulsory) / total,
			StaleCap:    100 * float64(cs.MissStaleness+cs.MissCapacity) / total,
			Consistency: 100 * float64(cs.MissConsistency) / total,
			Staleness:   100 * float64(cs.MissStaleness) / total,
			Capacity:    100 * float64(cs.MissCapacity) / total,
		}
		out = append(out, mb)
		o.printf("%-18s %10.1f%% %10.1f%% %11.1f%% %10.1f%% %9.1f%%\n",
			mb.Label, mb.Compulsory, mb.StaleCap, mb.Consistency, mb.Staleness, mb.Capacity)
	}
	return out, nil
}

// WriteHeavyResult is one point of the write-path experiment.
type WriteHeavyResult struct {
	Label          string
	ExtraIndexes   int
	Result         RunResult
	CommitsPerSec  float64
	VacuumedPerSec float64
}

// WriteHeavy measures the storage write path under an update/insert-skewed
// RUBiS mix (rubis.WriteHeavyMix, 60% read/write): commit throughput,
// serialization conflicts, and vacuum reclamation rate, with a
// configurable number of extra secondary indexes on the write-hot tables
// (each one multiplies per-commit index maintenance). Run on the baseline
// (no cache) and full-TxCache deployments. Not a paper figure: it is the
// instrument for the epoch-sharded-slab + batched-index-maintenance
// refactor (ROADMAP "write path" item); the matching testing.B entry
// points are BenchmarkCommitPipeline / BenchmarkVacuum in internal/db and
// BenchmarkWriteHeavy in bench_test.go.
func WriteHeavy(o Opts, extraIndexes int) ([]WriteHeavyResult, error) {
	o.fill()
	o.printf("# Write-heavy RUBiS mix (60%% RW), %d extra write-hot indexes\n", extraIndexes)
	o.printf("%-12s %12s %12s %12s %12s %8s\n", "config", "req/s", "commits/s", "conflicts", "vacuumed/s", "hit%")
	var out []WriteHeavyResult
	for _, mode := range []Mode{ModeBaseline, ModeTxCache} {
		cfg := SiteConfig{
			Mode: mode, Scale: o.Scale, Seed: o.Seed,
			Mix: &rubis.WriteHeavyMix, ExtraWriteIndexes: extraIndexes,
		}
		if mode == ModeTxCache {
			cfg.CacheBytes = 4 << 20
		}
		site, err := o.site(cfg)
		if err != nil {
			return nil, err
		}
		r := site.Run(o.Clients, o.Warm, o.Measure, o.Seed)
		site.Close()
		sec := o.Measure.Seconds()
		wr := WriteHeavyResult{
			Label:          mode.String(),
			ExtraIndexes:   extraIndexes,
			Result:         r,
			CommitsPerSec:  float64(r.DBCommits) / sec,
			VacuumedPerSec: float64(r.DBVacuumed) / sec,
		}
		out = append(out, wr)
		hit := "-"
		if mode != ModeBaseline {
			hit = fmt.Sprintf("%.1f%%", 100*r.HitRate)
		}
		o.printf("%-12s %12.0f %12.0f %12d %12.0f %8s\n",
			wr.Label, r.Throughput, wr.CommitsPerSec, r.DBConflicts, wr.VacuumedPerSec, hit)
	}
	return out, nil
}

// ChurnResult is one point of the membership-churn experiment.
type ChurnResult struct {
	Label        string
	Period       time.Duration // 0 = stable membership
	Result       RunResult
	NodesAdded   uint64
	NodesRemoved uint64
}

// Churn measures how live cluster membership changes affect TxCache: the
// same workload runs against a stable three-node cache cluster and against
// one where a node is drained and replaced with a cold node every period.
// Consistency is never at risk — the ring remaps keys and the joining
// node's conservative horizon makes it serve nothing it cannot prove fresh
// — so churn shows up purely as extra compulsory misses while the new node
// warms. This is the cache-tier elasticity claim of paper §4 exercised
// mid-workload, not a paper figure.
func Churn(o Opts, period time.Duration) ([]ChurnResult, error) {
	o.fill()
	if period <= 0 {
		period = 500 * time.Millisecond
	}
	o.printf("# Membership churn: node drain+join every %v vs stable cluster\n", period)
	o.printf("%-12s %12s %8s %8s %8s\n", "cluster", "req/s", "hit%", "joined", "left")
	var out []ChurnResult
	for _, churn := range []bool{false, true} {
		site, err := o.site(SiteConfig{
			Mode: ModeTxCache, Scale: o.Scale, CacheBytes: 4 << 20,
			CacheNodes: 3, Seed: o.Seed,
		})
		if err != nil {
			return nil, err
		}
		var stop func()
		if churn {
			stop = site.StartChurn(period)
		}
		r := site.Run(o.Clients, o.Warm, o.Measure, o.Seed)
		if stop != nil {
			stop()
		}
		cs := site.Client.Stats()
		site.Close()
		label := "stable"
		p := time.Duration(0)
		if churn {
			label = "churning"
			p = period
		}
		cr := ChurnResult{
			Label: label, Period: p, Result: r,
			NodesAdded:   cs.NodesAdded.Load(),
			NodesRemoved: cs.NodesRemoved.Load(),
		}
		out = append(out, cr)
		o.printf("%-12s %12.0f %7.1f%% %8d %8d\n",
			label, r.Throughput, 100*r.HitRate, cr.NodesAdded, cr.NodesRemoved)
	}
	return out, nil
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
