package invalidation

import (
	"sync"
	"sync/atomic"
)

// TagID is an interned invalidation tag: a small integer naming one
// (table, key) or (table, wildcard) dependency. Two tags produced by KeyTag
// or WildcardTag are equal exactly when their TagIDs are equal, so the hot
// paths — tag-set accumulation in the database executor, dependency
// registration and invalidation matching in the cache server, tag merging in
// the library's cacheable frames — compare and hash machine words instead of
// re-concatenating and re-comparing strings. The zero TagID is "no tag".
//
// TagIDs are process-local: they are assigned in first-intern order by a
// process-global interner and carry no meaning on the wire. Wire codecs
// (invalidation messages, cache put/lookup frames, dbnet results) transmit
// the string form and re-intern at decode.
type TagID uint32

// internEntry is the interner's record for one TagID.
type internEntry struct {
	tag Tag
	// wild is the TagID of the same table's wildcard tag (== the entry's
	// own id for wildcard tags). Precomputing it makes dual-granularity
	// matching ("a key change affects table-scan dependents and vice
	// versa") two array loads and an integer compare.
	wild TagID
}

// interner is the process-global tag table. Lookups are a read-locked map
// probe keyed by a composite byte key, which Go compiles allocation-free
// for map[string] indexed with string(bytes); reverse lookups read an
// immutable prefix of the entries slice through an atomic snapshot, so
// TagOf/WildOf take no lock at all.
//
// The table is bounded (SetInternLimit): wire decoders intern whatever
// tags a peer sends, so an unbounded table would be remotely drivable.
// TagIDs embedded in consumer state (cache-server posting lists, library
// frames) make recycling IDs unsound — a recycled ID would silently change
// meaning under its holders — so instead of an eviction epoch, tags first
// seen at the cap degrade to coarser, already-interned granularities:
//
//	key tag   -> its table's wildcard (when that table is known)
//	otherwise -> the reserved overflow wildcard (interned at init)
//
// Degradation only ever widens matching (a wildcard affects strictly more
// dependents than any of its key tags), so correctness is preserved at the
// cost of extra invalidations; memory stays bounded no matter what a peer
// sends. The overflow wildcard is the terminal rollover epoch: every
// beyond-cap tag of an unknown table shares it, on every node, because its
// canonical wire form re-interns to the same reserved entry.
type interner struct {
	mu      sync.RWMutex
	ids     map[string]TagID
	entries atomic.Pointer[[]internEntry] // entries[id-1]; append-only prefix
	limit   int
	degrade atomic.Uint64 // interns answered with a coarser tag
	over    TagID         // the reserved overflow wildcard
}

// DefaultInternLimit bounds the process-global tag table. At ~64 bytes per
// entry the default caps interner memory in the tens of MB; production
// deployments size it to their hot-key cardinality via SetInternLimit.
const DefaultInternLimit = 1 << 20

// overflowTable names the reserved overflow wildcard's pseudo-table. SQL
// identifiers cannot contain NUL, so it collides with no real table.
const overflowTable = "\x00overflow"

var global = newInterner()

func newInterner() *interner {
	in := &interner{ids: make(map[string]TagID, 256), limit: DefaultInternLimit}
	empty := make([]internEntry, 0, 256)
	in.entries.Store(&empty)
	k := internKey(nil, overflowTable, "", true)
	in.over = in.intern(k, Tag{Table: overflowTable, Wildcard: true})
	return in
}

// SetInternLimit caps the number of distinct tags the process-global
// interner will hold; beyond it, new tags degrade to coarser granularities
// (see the interner doc). Lowering the limit below the current count stops
// growth but evicts nothing. The floor is 64.
func SetInternLimit(n int) {
	if n < 64 {
		n = 64
	}
	global.mu.Lock()
	global.limit = n
	global.mu.Unlock()
}

// InternLimit returns the current interner cap.
func InternLimit() int {
	global.mu.RLock()
	defer global.mu.RUnlock()
	return global.limit
}

// OverflowID returns the reserved overflow wildcard: the tag every
// beyond-cap tag of an unknown table degrades to.
func OverflowID() TagID { return global.over }

// DegradedCount returns how many intern requests were answered with a
// coarser tag because the table was at its cap (monitoring).
func DegradedCount() uint64 { return global.degrade.Load() }

// internKey builds the composite lookup key for a tag. Wildcard tags are
// canonicalized to their table (any Key field is ignored, as wildcard
// matching always has), so "items:?" interns to one ID however it was
// constructed. SQL identifiers cannot contain NUL, which makes the
// table/key split unambiguous even for binary key values.
func internKey(dst []byte, table, key string, wildcard bool) []byte {
	if wildcard {
		dst = append(dst, 'w')
		return append(dst, table...)
	}
	dst = append(dst, 'k')
	dst = append(dst, table...)
	dst = append(dst, 0)
	return append(dst, key...)
}

// lookup probes the table without allocating; k aliases scratch bytes.
func (in *interner) lookup(k []byte) (TagID, bool) {
	in.mu.RLock()
	id, ok := in.ids[string(k)]
	in.mu.RUnlock()
	return id, ok
}

// intern inserts t (already canonicalized when wildcard) under key k,
// returning the existing ID on a race. At the cap, new tags are not
// inserted: they degrade to the coarsest already-interned covering tag.
func (in *interner) intern(k []byte, t Tag) TagID {
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok := in.ids[string(k)]; ok {
		return id
	}
	if t.Wildcard {
		cur := *in.entries.Load()
		if len(cur) >= in.limit {
			in.degrade.Add(1)
			return in.over
		}
		id := TagID(len(cur) + 1)
		next := append(cur, internEntry{tag: t, wild: id})
		in.entries.Store(&next)
		in.ids[string(k)] = id
		return id
	}
	// Key tag: resolve (possibly creating) the table's wildcard first so
	// the entry can point at it — and so a beyond-cap key tag has it to
	// degrade to.
	wild, ok := in.wildLocked(t.Table)
	if !ok {
		in.degrade.Add(1)
		return in.over
	}
	cur := *in.entries.Load() // wildLocked may have appended
	if len(cur) >= in.limit {
		in.degrade.Add(1)
		return wild
	}
	id := TagID(len(cur) + 1)
	next := append(cur, internEntry{tag: t, wild: wild})
	in.entries.Store(&next)
	in.ids[string(k)] = id
	return id
}

// wildLocked resolves the wildcard tag for table, interning it when room
// remains; ok is false when the table is unknown and the cap is reached.
// Caller holds mu.
func (in *interner) wildLocked(table string) (TagID, bool) {
	k := internKey(nil, table, "", true)
	if id, ok := in.ids[string(k)]; ok {
		return id, true
	}
	cur := *in.entries.Load()
	if len(cur) >= in.limit {
		return 0, false
	}
	id := TagID(len(cur) + 1)
	next := append(cur, internEntry{tag: WildcardTag(table), wild: id})
	in.entries.Store(&next)
	in.ids[string(k)] = id
	return id, true
}

// Intern returns the TagID for t, assigning one on first sight.
func Intern(t Tag) TagID {
	if t.Wildcard {
		t.Key = "" // canonical wildcard form
	}
	var scratch [64]byte
	k := internKey(scratch[:0], t.Table, t.Key, t.Wildcard)
	if id, ok := global.lookup(k); ok {
		return id
	}
	return global.intern(k, t)
}

// InternParts interns the tag (table, key, wildcard) given as decoded wire
// parts, allocation-free after the first sight of the tag.
func InternParts(scratch []byte, table, key string, wildcard bool) (TagID, []byte) {
	scratch = internKey(scratch[:0], table, key, wildcard)
	if id, ok := global.lookup(scratch); ok {
		return id, scratch
	}
	if wildcard {
		key = ""
	}
	return global.intern(scratch, Tag{Table: table, Key: key, Wildcard: wildcard}), scratch
}

// InternKeyBytes interns the key tag "table:column=value" with the value
// given as pre-formatted bytes. The composite lookup key is built in
// scratch (returned for reuse); after a tag has been seen once the whole
// call allocates nothing, which is what keeps the executor's per-scan tag
// accounting off the heap.
func InternKeyBytes(scratch []byte, table, column string, value []byte) (TagID, []byte) {
	scratch = scratch[:0]
	scratch = append(scratch, 'k')
	scratch = append(scratch, table...)
	scratch = append(scratch, 0)
	scratch = append(scratch, column...)
	scratch = append(scratch, '=')
	scratch = append(scratch, value...)
	if id, ok := global.lookup(scratch); ok {
		return id, scratch
	}
	key := make([]byte, 0, len(column)+1+len(value))
	key = append(key, column...)
	key = append(key, '=')
	key = append(key, value...)
	return global.intern(scratch, Tag{Table: table, Key: string(key)}), scratch
}

// InternWildcard interns the table-granularity tag for table.
func InternWildcard(table string) TagID {
	var scratch [64]byte
	k := internKey(scratch[:0], table, "", true)
	if id, ok := global.lookup(k); ok {
		return id
	}
	return global.intern(k, WildcardTag(table))
}

// TagOf returns the Tag an ID was interned from (the canonical form for
// wildcards). The zero ID returns the zero Tag.
func TagOf(id TagID) Tag {
	if id == 0 {
		return Tag{}
	}
	return (*global.entries.Load())[id-1].tag
}

// WildOf returns the TagID of the wildcard tag covering id's table
// (id itself when id is a wildcard). The zero ID maps to zero.
func WildOf(id TagID) TagID {
	if id == 0 {
		return 0
	}
	return (*global.entries.Load())[id-1].wild
}

// IsWildcard reports whether id names a table-granularity tag.
func IsWildcard(id TagID) bool { return id != 0 && WildOf(id) == id }

// Affects reports whether a committed transaction's tag mt invalidates a
// cached value depending on tag vt, honoring dual granularity in both
// directions: equal tags match, a wildcard matches every tag of its table,
// and any key change matches the table's wildcard dependents. It is the
// TagID form of the pairwise string comparison the cache server used to do
// per history message.
func Affects(mt, vt TagID) bool {
	if mt == vt {
		return mt != 0
	}
	wm, wv := WildOf(mt), WildOf(vt)
	return wm == wv && (mt == wm || vt == wv)
}

// InternedCount returns the number of distinct tags interned so far
// (monitoring; the interner grows with the set of distinct hot keys up to
// SetInternLimit and is never compacted — see the interner doc for why
// beyond-cap tags degrade instead of evicting).
func InternedCount() int { return len(*global.entries.Load()) }
