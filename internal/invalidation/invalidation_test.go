package invalidation

import (
	"testing"
	"time"

	"txcache/internal/interval"
	"txcache/internal/wire"
)

func TestTagString(t *testing.T) {
	if got := KeyTag("users", "name", "alice").String(); got != "users:name=alice" {
		t.Errorf("KeyTag = %q", got)
	}
	if got := WildcardTag("users").String(); got != "users:?" {
		t.Errorf("WildcardTag = %q", got)
	}
}

func TestMessageEncodeDecode(t *testing.T) {
	m := Message{
		TS:       42,
		WallTime: time.Unix(100, 250),
		Tags: []TagID{
			Intern(KeyTag("users", "id", "7")),
			Intern(WildcardTag("items")),
			Intern(Tag{}),
		},
	}
	b := m.Encode(0x10)
	d := wire.NewDecoder(b)
	if op := d.Op(); op != 0x10 {
		t.Fatalf("op = %#x", op)
	}
	got, err := DecodeMessage(d)
	if err != nil {
		t.Fatal(err)
	}
	if got.TS != m.TS || !got.WallTime.Equal(m.WallTime) || len(got.Tags) != 3 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range m.Tags {
		if got.Tags[i] != m.Tags[i] {
			t.Fatalf("tag %d: got %+v want %+v", i, got.Tags[i], m.Tags[i])
		}
	}
}

func TestMessageDecodeTruncated(t *testing.T) {
	m := Message{TS: 1, Tags: []TagID{Intern(KeyTag("t", "c", "v"))}}
	b := m.Encode(1)
	d := wire.NewDecoder(b[:len(b)-3])
	d.Op()
	if _, err := DecodeMessage(d); err == nil {
		t.Fatal("want error on truncated message")
	}
}

func TestBusOrderedDelivery(t *testing.T) {
	bus := NewBus(false)
	sub := bus.Subscribe()
	const n = 1000
	for i := 1; i <= n; i++ {
		bus.Publish(Message{TS: interval.Timestamp(i)})
	}
	for i := 1; i <= n; i++ {
		m := <-sub.C
		if m.TS != interval.Timestamp(i) {
			t.Fatalf("out of order: got ts %d, want %d", m.TS, i)
		}
	}
	sub.Close()
}

func TestBusFanOut(t *testing.T) {
	bus := NewBus(false)
	subs := []*Subscription{bus.Subscribe(), bus.Subscribe(), bus.Subscribe()}
	bus.Publish(Message{TS: 7})
	for i, s := range subs {
		select {
		case m := <-s.C:
			if m.TS != 7 {
				t.Fatalf("sub %d got ts %d", i, m.TS)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("sub %d timed out", i)
		}
	}
}

func TestBusHistoryReplay(t *testing.T) {
	bus := NewBus(true)
	bus.Publish(Message{TS: 1})
	bus.Publish(Message{TS: 2})
	sub := bus.Subscribe() // late subscriber
	bus.Publish(Message{TS: 3})
	for want := interval.Timestamp(1); want <= 3; want++ {
		select {
		case m := <-sub.C:
			if m.TS != want {
				t.Fatalf("got ts %d, want %d", m.TS, want)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("timed out waiting for ts %d", want)
		}
	}
}

func TestBusSlowSubscriberDoesNotBlockPublish(t *testing.T) {
	bus := NewBus(false)
	_ = bus.Subscribe() // never drained
	done := make(chan struct{})
	go func() {
		for i := 0; i < 10000; i++ {
			bus.Publish(Message{TS: interval.Timestamp(i)})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publish blocked on slow subscriber")
	}
}
