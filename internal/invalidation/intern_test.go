package invalidation

import (
	"fmt"
	"math/rand"
	"testing"
)

// oldMatch is the pre-interning pairwise matching rule, verbatim: equal
// tags match, a wildcard matches every tag of its table, and a key change
// matches the table's wildcard dependents. It is the oracle the interned
// form must reproduce exactly.
func oldMatch(mt, vt Tag) bool {
	if mt.Wildcard && mt.Table == vt.Table {
		return true
	}
	if vt.Wildcard && vt.Table == mt.Table {
		return true
	}
	return mt == vt
}

// randTag draws from a small universe so collisions (equal tags) are
// frequent enough to exercise both branches.
func randTag(rng *rand.Rand) Tag {
	table := fmt.Sprintf("t%d", rng.Intn(4))
	if rng.Intn(4) == 0 {
		return WildcardTag(table)
	}
	col := fmt.Sprintf("c%d", rng.Intn(3))
	return KeyTag(table, col, fmt.Sprint(rng.Intn(6)))
}

// TestInternPreservesEquality: for tags built through the public
// constructors, TagID equality is exactly Tag equality, and TagOf is a
// left inverse of Intern.
func TestInternPreservesEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		a, b := randTag(rng), randTag(rng)
		ia, ib := Intern(a), Intern(b)
		if (ia == ib) != (a == b) {
			t.Fatalf("ID equality diverged: %v/%v -> %d/%d", a, b, ia, ib)
		}
		if got := TagOf(ia); got != a {
			t.Fatalf("TagOf(Intern(%v)) = %v", a, got)
		}
	}
}

// TestAffectsMatchesOldSemantics: the integer-compare matching rule is
// extensionally equal to the string-form rule for every pair in the
// universe.
func TestAffectsMatchesOldSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20000; i++ {
		mt, vt := randTag(rng), randTag(rng)
		got := Affects(Intern(mt), Intern(vt))
		want := oldMatch(mt, vt)
		if got != want {
			t.Fatalf("Affects(%v, %v) = %v, old semantics say %v", mt, vt, got, want)
		}
	}
}

// TestWildOf: the wildcard pointer is the table's wildcard for key tags
// and the identity for wildcards; distinct tables never share one.
func TestWildOf(t *testing.T) {
	k := Intern(KeyTag("orders", "id", "1"))
	w := Intern(WildcardTag("orders"))
	if WildOf(k) != w {
		t.Fatalf("WildOf(key) = %d, want %d", WildOf(k), w)
	}
	if WildOf(w) != w || !IsWildcard(w) || IsWildcard(k) {
		t.Fatal("wildcard identity broken")
	}
	other := Intern(WildcardTag("users2"))
	if other == w {
		t.Fatal("distinct tables share a wildcard ID")
	}
}

// TestInternPartsBinaryKeys: key values are arbitrary bytes (string column
// values); NULs and '=' inside values must not collide distinct tags.
func TestInternPartsBinaryKeys(t *testing.T) {
	a, _ := InternParts(nil, "t", "c=a\x00b", false)
	b, _ := InternParts(nil, "t", "c=a", false)
	c, _ := InternParts(nil, "t", "c=a\x00b", false)
	if a == b {
		t.Fatal("distinct binary keys collided")
	}
	if a != c {
		t.Fatal("equal binary keys did not intern to one ID")
	}
}

// TestInternConcurrent hammers the interner from many goroutines; the race
// detector plus the post-condition (one ID per tag) covers the
// copy-on-write entries snapshot.
func TestInternConcurrent(t *testing.T) {
	done := make(chan map[Tag]TagID, 8)
	for g := 0; g < 8; g++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			seen := make(map[Tag]TagID)
			for i := 0; i < 2000; i++ {
				tag := randTag(rng)
				id := Intern(tag)
				if prev, ok := seen[tag]; ok && prev != id {
					t.Errorf("tag %v interned to %d then %d", tag, prev, id)
				}
				seen[tag] = id
				if TagOf(id) != tag {
					t.Errorf("TagOf(%d) = %v, want %v", id, TagOf(id), tag)
				}
			}
			done <- seen
		}(int64(g))
	}
	merged := make(map[Tag]TagID)
	for g := 0; g < 8; g++ {
		for tag, id := range <-done {
			if prev, ok := merged[tag]; ok && prev != id {
				t.Fatalf("tag %v has two IDs across goroutines: %d, %d", tag, prev, id)
			}
			merged[tag] = id
		}
	}
}

// TestInternCapDegrades: at the cap, new key tags of a known table degrade
// to its wildcard, and tags of unknown tables degrade to the shared
// overflow wildcard. Degradation must only widen matching (conservative
// over-invalidation, never a missed one).
func TestInternCapDegrades(t *testing.T) {
	defer SetInternLimit(DefaultInternLimit)

	// Intern a table's wildcard and one key tag while room remains, then
	// slam the cap shut at the current size.
	w := Intern(WildcardTag("captable"))
	k1 := Intern(KeyTag("captable", "c", "1"))
	SetInternLimit(64) // floor; far below DefaultInternLimit but >= current count
	SetInternLimit(InternedCount())
	if InternLimit() != max(64, InternedCount()) {
		t.Fatalf("InternLimit = %d", InternLimit())
	}
	if got := InternedCount(); got > InternLimit() {
		t.Fatalf("count %d above limit %d", got, InternLimit())
	}
	before := InternedCount()
	d0 := DegradedCount()

	// Known tag: unaffected by the cap.
	if got := Intern(KeyTag("captable", "c", "1")); got != k1 {
		t.Fatalf("already-interned tag changed ID at cap: %d != %d", got, k1)
	}
	// New key tag of a known table: degrades to the table wildcard.
	if got := Intern(KeyTag("captable", "c", "2")); got != w {
		t.Fatalf("beyond-cap key tag = %d, want table wildcard %d", got, w)
	}
	// New tags of an unknown table: degrade to the overflow wildcard,
	// whichever constructor path interns them.
	if got := Intern(KeyTag("capunknown", "c", "1")); got != OverflowID() {
		t.Fatalf("beyond-cap unknown-table key tag = %d, want overflow %d", got, OverflowID())
	}
	if got := InternWildcard("capunknown2"); got != OverflowID() {
		t.Fatalf("beyond-cap wildcard = %d, want overflow %d", got, OverflowID())
	}
	if got, _ := InternParts(nil, "capunknown3", "c=9", false); got != OverflowID() {
		t.Fatalf("beyond-cap wire tag = %d, want overflow %d", got, OverflowID())
	}
	var scratch []byte
	if got, _ := InternKeyBytes(scratch, "capunknown4", "c", []byte("9")); got != OverflowID() {
		t.Fatalf("beyond-cap key bytes = %d, want overflow %d", got, OverflowID())
	}
	if InternedCount() != before {
		t.Fatalf("cap breached: %d -> %d entries", before, InternedCount())
	}
	if DegradedCount() == d0 {
		t.Fatal("DegradedCount did not advance")
	}

	// Conservative property: a degraded message tag still affects every
	// dependent its exact form would have affected.
	if !Affects(Intern(KeyTag("captable", "c", "7")), k1) {
		t.Fatal("degraded key tag must (over-)affect its table's key dependents")
	}
	if !Affects(Intern(KeyTag("capunknown", "c", "1")), Intern(KeyTag("capunknown", "c", "1"))) {
		t.Fatal("two beyond-cap tags of one unknown table must still affect each other")
	}
	// The overflow wildcard behaves as a wildcard of its own pseudo-table.
	if !IsWildcard(OverflowID()) || WildOf(OverflowID()) != OverflowID() {
		t.Fatal("overflow ID must be its own wildcard")
	}
}

// TestOverflowRoundTripsWire: the overflow wildcard's canonical form
// re-interns to the same reserved ID, so relaying a degraded tag between
// processes converges instead of fabricating fresh tags.
func TestOverflowRoundTripsWire(t *testing.T) {
	o := TagOf(OverflowID())
	id, _ := InternParts(nil, o.Table, o.Key, o.Wildcard)
	if id != OverflowID() {
		t.Fatalf("overflow wire round trip = %d, want %d", id, OverflowID())
	}
}
