// Package invalidation defines invalidation tags and the ordered
// invalidation stream that carries them from the database to the cache
// nodes (paper §4.2, §5.3).
//
// A tag names a database dependency at one of two granularities: an index
// equality lookup yields a two-part tag like "users:name=alice", while a
// sequential or range scan yields a table wildcard like "users:?". Every
// read/write transaction that commits produces one stream message carrying
// its commit timestamp and the set of tags it affected; cache nodes apply
// messages strictly in timestamp order.
package invalidation

import (
	"fmt"
	"sync"
	"time"

	"txcache/internal/interval"
	"txcache/internal/wire"
)

// Tag is a dependency tag. Wildcard tags cover every key of the table.
type Tag struct {
	Table    string
	Key      string // "column=value" form; empty when Wildcard
	Wildcard bool
}

// KeyTag returns a two-part tag for an index equality lookup.
func KeyTag(table, column string, value string) Tag {
	return Tag{Table: table, Key: column + "=" + value}
}

// WildcardTag returns a table-granularity tag for scans.
func WildcardTag(table string) Tag { return Tag{Table: table, Wildcard: true} }

// String renders the paper's "TABLE:KEY" / "TABLE:?" form.
func (t Tag) String() string {
	if t.Wildcard {
		return t.Table + ":?"
	}
	return t.Table + ":" + t.Key
}

// Message is one entry of the invalidation stream: the timestamp of a
// committed read/write transaction and every tag it affected, as interned
// TagIDs. Messages are produced for every update transaction even if their
// tag set is empty, so that cache nodes' notion of "now" (the last
// invalidation processed) advances with the database.
type Message struct {
	TS       interval.Timestamp
	WallTime time.Time
	Tags     []TagID
}

// TagList materializes the message's tags in struct form (debugging,
// logging); the hot paths stay on the IDs.
func (m Message) TagList() []Tag {
	out := make([]Tag, len(m.Tags))
	for i, id := range m.Tags {
		out[i] = TagOf(id)
	}
	return out
}

// Encode serializes the message for the wire using the given opcode. TagIDs
// are process-local, so the wire carries the string form; the receiving
// process re-interns at decode.
func (m Message) Encode(op byte) []byte {
	e := wire.NewBuffer(op)
	e.U64(uint64(m.TS))
	e.I64(m.WallTime.UnixNano())
	e.U32(uint32(len(m.Tags)))
	for _, id := range m.Tags {
		t := TagOf(id)
		e.Str(t.Table).Str(t.Key).Bool(t.Wildcard)
	}
	return e.Bytes()
}

// DecodeTags reads n wire-form (table, key, wildcard) tag triples from d,
// interning each. It is the shared inner loop of every protocol that
// carries tags (invalidation messages, cache puts and lookup results,
// dbnet query results). On a decode error the tags read so far and the
// error are returned.
func DecodeTags(d *wire.Decoder, n uint32) ([]TagID, error) {
	if n == 0 {
		return nil, d.Err()
	}
	// Pre-size from the count but cap the initial allocation: a corrupt
	// count prefix must fail on decode, not on a giant make.
	tags := make([]TagID, 0, min(n, 4096))
	var scratch [64]byte
	buf := scratch[:0]
	for i := uint32(0); i < n; i++ {
		table := d.Str()
		key := d.Str()
		wild := d.Bool()
		if d.Err() != nil {
			return tags, d.Err()
		}
		var id TagID
		id, buf = InternParts(buf, table, key, wild)
		tags = append(tags, id)
	}
	return tags, d.Err()
}

// DecodeMessage parses a message payload positioned after the opcode,
// interning the tags as it goes.
func DecodeMessage(d *wire.Decoder) (Message, error) {
	var m Message
	m.TS = interval.Timestamp(d.U64())
	m.WallTime = time.Unix(0, d.I64())
	n := d.U32()
	if d.Err() != nil {
		return m, d.Err()
	}
	if n > 1<<20 {
		return m, fmt.Errorf("invalidation: unreasonable tag count %d", n)
	}
	var err error
	m.Tags, err = DecodeTags(d, n)
	return m, err
}

// Bus is an ordered, reliable fan-out of the invalidation stream to any
// number of subscribers — the paper's application-level multicast. Messages
// are delivered to every subscriber in publish order. Delivery is
// asynchronous: each subscriber has an unbounded ordered queue so a slow
// cache node cannot stall the database's commit path.
type Bus struct {
	mu   sync.Mutex
	subs []*Subscription
	log  []Message // retained history for late subscribers during tests
	keep bool
}

// NewBus returns an empty bus. If keepHistory is set, messages are retained
// and replayed to late subscribers (useful for cache nodes joining late).
func NewBus(keepHistory bool) *Bus {
	return &Bus{keep: keepHistory}
}

// Subscription receives stream messages in order via C.
type Subscription struct {
	C      <-chan Message
	c      chan Message
	mu     sync.Mutex
	queue  []Message
	closed bool
	wake   chan struct{}
}

// Subscribe registers a new subscriber. Replays history first when the bus
// keeps it.
func (b *Bus) Subscribe() *Subscription {
	s := &Subscription{
		c:    make(chan Message, 64),
		wake: make(chan struct{}, 1),
	}
	s.C = s.c
	go s.pump()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.keep {
		s.enqueue(b.log...)
	}
	b.subs = append(b.subs, s)
	return s
}

// Publish delivers m to all subscribers in order.
func (b *Bus) Publish(m Message) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.keep {
		b.log = append(b.log, m)
	}
	for _, s := range b.subs {
		s.enqueue(m)
	}
}

// PublishBatch delivers ms to all subscribers as one atomic, ordered
// append: one bus lock acquisition for a whole commit group. The caller
// (the database's commit sequencer) guarantees ms is in timestamp order.
func (b *Bus) PublishBatch(ms []Message) {
	if len(ms) == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.keep {
		b.log = append(b.log, ms...)
	}
	for _, s := range b.subs {
		s.enqueue(ms...)
	}
}

func (s *Subscription) enqueue(ms ...Message) {
	s.mu.Lock()
	s.queue = append(s.queue, ms...)
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// pump moves messages from the unbounded queue to the delivery channel,
// preserving order.
func (s *Subscription) pump() {
	for range s.wake {
		for {
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				close(s.c)
				return
			}
			if len(s.queue) == 0 {
				s.mu.Unlock()
				break
			}
			m := s.queue[0]
			s.queue = s.queue[1:]
			s.mu.Unlock()
			s.c <- m
		}
	}
}

// Close stops delivery. Pending messages may be dropped.
func (s *Subscription) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}
