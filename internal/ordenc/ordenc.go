// Package ordenc provides an order-preserving binary encoding for index key
// values: for any two keys a and b, bytes.Compare(Encode(a), Encode(b))
// matches the natural ordering of a and b. The encoding supports composite
// (multi-column) keys by concatenation, because every element encoding is
// self-delimiting.
//
// Ordering across types is by type tag: NULL < bool < int64 < float64 <
// string. Within a type, ordering is the natural one.
package ordenc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Type tags. They sort NULL first, mirroring SQL's NULLS FIRST.
const (
	tagNull   byte = 0x00
	tagBool   byte = 0x01
	tagInt    byte = 0x02
	tagFloat  byte = 0x03
	tagString byte = 0x04
)

// String escape: 0x00 bytes are escaped as 0x00 0xFF, and the string is
// terminated by 0x00 0x00. This keeps prefix ordering correct and makes the
// element self-delimiting for composite keys.
const (
	strEsc  byte = 0x00
	strPad  byte = 0xFF
	strTerm byte = 0x00
)

// AppendNull appends the encoding of SQL NULL.
func AppendNull(dst []byte) []byte { return append(dst, tagNull) }

// AppendBool appends an order-preserving encoding of b (false < true).
func AppendBool(dst []byte, b bool) []byte {
	dst = append(dst, tagBool)
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// AppendInt appends an order-preserving encoding of v.
func AppendInt(dst []byte, v int64) []byte {
	dst = append(dst, tagInt)
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(v)^(1<<63))
	return append(dst, buf[:]...)
}

// AppendFloat appends an order-preserving encoding of v. NaN sorts before
// -Inf (it is mapped to the smallest encoding) so that encoding is total.
func AppendFloat(dst []byte, v float64) []byte {
	dst = append(dst, tagFloat)
	bits := math.Float64bits(v)
	if math.IsNaN(v) {
		bits = 0 // smallest transformed value
	} else if bits&(1<<63) != 0 {
		bits = ^bits // negative: flip all bits
	} else {
		bits |= 1 << 63 // positive: set sign bit
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], bits)
	return append(dst, buf[:]...)
}

// AppendString appends an order-preserving, self-delimiting encoding of s.
func AppendString(dst []byte, s string) []byte {
	dst = append(dst, tagString)
	for i := 0; i < len(s); i++ {
		c := s[i]
		dst = append(dst, c)
		if c == strEsc {
			dst = append(dst, strPad)
		}
	}
	return append(dst, strEsc, strTerm)
}

var errCorrupt = errors.New("ordenc: corrupt encoding")

// DecodeNext decodes the first element of b and returns the value (nil,
// bool, int64, float64, or string) and the remaining bytes.
func DecodeNext(b []byte) (any, []byte, error) {
	if len(b) == 0 {
		return nil, nil, errCorrupt
	}
	switch b[0] {
	case tagNull:
		return nil, b[1:], nil
	case tagBool:
		if len(b) < 2 {
			return nil, nil, errCorrupt
		}
		return b[1] != 0, b[2:], nil
	case tagInt:
		if len(b) < 9 {
			return nil, nil, errCorrupt
		}
		u := binary.BigEndian.Uint64(b[1:9]) ^ (1 << 63)
		return int64(u), b[9:], nil
	case tagFloat:
		if len(b) < 9 {
			return nil, nil, errCorrupt
		}
		bits := binary.BigEndian.Uint64(b[1:9])
		if bits == 0 {
			return math.NaN(), b[9:], nil
		}
		if bits&(1<<63) != 0 {
			bits &^= 1 << 63
		} else {
			bits = ^bits
		}
		return math.Float64frombits(bits), b[9:], nil
	case tagString:
		var out []byte
		i := 1
		for {
			if i >= len(b) {
				return nil, nil, errCorrupt
			}
			c := b[i]
			if c != strEsc {
				out = append(out, c)
				i++
				continue
			}
			if i+1 >= len(b) {
				return nil, nil, errCorrupt
			}
			switch b[i+1] {
			case strTerm:
				return string(out), b[i+2:], nil
			case strPad:
				out = append(out, strEsc)
				i += 2
			default:
				return nil, nil, errCorrupt
			}
		}
	default:
		return nil, nil, fmt.Errorf("ordenc: unknown tag %#x", b[0])
	}
}
