package ordenc

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestIntOrdering(t *testing.T) {
	vals := []int64{math.MinInt64, -1 << 40, -255, -1, 0, 1, 42, 1 << 40, math.MaxInt64}
	for i := 1; i < len(vals); i++ {
		a := AppendInt(nil, vals[i-1])
		b := AppendInt(nil, vals[i])
		if bytes.Compare(a, b) >= 0 {
			t.Errorf("encoding of %d should sort before %d", vals[i-1], vals[i])
		}
	}
}

func TestIntOrderingProperty(t *testing.T) {
	f := func(a, b int64) bool {
		ea, eb := AppendInt(nil, a), AppendInt(nil, b)
		switch {
		case a < b:
			return bytes.Compare(ea, eb) < 0
		case a > b:
			return bytes.Compare(ea, eb) > 0
		default:
			return bytes.Equal(ea, eb)
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloatOrdering(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e300, -1.5, -math.SmallestNonzeroFloat64, 0, math.SmallestNonzeroFloat64, 1.5, 1e300, math.Inf(1)}
	for i := 1; i < len(vals); i++ {
		a := AppendFloat(nil, vals[i-1])
		b := AppendFloat(nil, vals[i])
		if bytes.Compare(a, b) >= 0 {
			t.Errorf("encoding of %g should sort before %g", vals[i-1], vals[i])
		}
	}
	// NaN sorts before everything, including -Inf.
	nan := AppendFloat(nil, math.NaN())
	if bytes.Compare(nan, AppendFloat(nil, math.Inf(-1))) >= 0 {
		t.Error("NaN should sort before -Inf")
	}
}

func TestStringOrdering(t *testing.T) {
	vals := []string{"", "\x00", "\x00\x00", "\x00a", "a", "a\x00", "a\x00b", "aa", "ab", "b"}
	for i := 1; i < len(vals); i++ {
		a := AppendString(nil, vals[i-1])
		b := AppendString(nil, vals[i])
		if bytes.Compare(a, b) >= 0 {
			t.Errorf("encoding of %q should sort before %q", vals[i-1], vals[i])
		}
	}
}

func TestStringOrderingProperty(t *testing.T) {
	f := func(a, b string) bool {
		ea, eb := AppendString(nil, a), AppendString(nil, b)
		return (strings.Compare(a, b) < 0) == (bytes.Compare(ea, eb) < 0) &&
			(a == b) == bytes.Equal(ea, eb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCrossTypeOrdering(t *testing.T) {
	null := AppendNull(nil)
	bf := AppendBool(nil, false)
	in := AppendInt(nil, math.MaxInt64)
	fl := AppendFloat(nil, math.Inf(-1))
	st := AppendString(nil, "")
	seq := [][]byte{null, bf, in, fl, st}
	names := []string{"null", "bool", "int", "float", "string"}
	for i := 1; i < len(seq); i++ {
		if bytes.Compare(seq[i-1], seq[i]) >= 0 {
			t.Errorf("%s should sort before %s", names[i-1], names[i])
		}
	}
}

func TestCompositeKeyOrdering(t *testing.T) {
	// ("a", 2) < ("a", 10) < ("b", 1): element boundaries must not leak.
	k1 := AppendInt(AppendString(nil, "a"), 2)
	k2 := AppendInt(AppendString(nil, "a"), 10)
	k3 := AppendInt(AppendString(nil, "b"), 1)
	if !(bytes.Compare(k1, k2) < 0 && bytes.Compare(k2, k3) < 0) {
		t.Fatal("composite key ordering broken")
	}
	// Embedded NUL must not cause ("a\x00", "b") to collide with ("a", "\x00b").
	c1 := AppendString(AppendString(nil, "a\x00"), "b")
	c2 := AppendString(AppendString(nil, "a"), "\x00b")
	if bytes.Equal(c1, c2) {
		t.Fatal("composite keys with embedded NUL collide")
	}
}

func TestRoundTrip(t *testing.T) {
	var b []byte
	b = AppendNull(b)
	b = AppendBool(b, true)
	b = AppendInt(b, -12345)
	b = AppendFloat(b, 3.25)
	b = AppendString(b, "hello\x00world")

	want := []any{nil, true, int64(-12345), 3.25, "hello\x00world"}
	rest := b
	for i, w := range want {
		var v any
		var err error
		v, rest, err = DecodeNext(rest)
		if err != nil {
			t.Fatalf("decode element %d: %v", i, err)
		}
		if v != w {
			t.Fatalf("element %d: got %v, want %v", i, v, w)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("trailing bytes after decode: %v", rest)
	}
}

func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 1000; trial++ {
		var b []byte
		var want []any
		for i := 0; i < rng.Intn(6)+1; i++ {
			switch rng.Intn(4) {
			case 0:
				v := rng.Int63() - rng.Int63()
				b = AppendInt(b, v)
				want = append(want, v)
			case 1:
				v := rng.NormFloat64()
				b = AppendFloat(b, v)
				want = append(want, v)
			case 2:
				n := rng.Intn(10)
				buf := make([]byte, n)
				rng.Read(buf)
				b = AppendString(b, string(buf))
				want = append(want, string(buf))
			case 3:
				v := rng.Intn(2) == 0
				b = AppendBool(b, v)
				want = append(want, v)
			}
		}
		rest := b
		for i, w := range want {
			var v any
			var err error
			v, rest, err = DecodeNext(rest)
			if err != nil {
				t.Fatalf("trial %d element %d: %v", trial, i, err)
			}
			if v != w {
				t.Fatalf("trial %d element %d: got %v want %v", trial, i, v, w)
			}
		}
	}
}

func TestDecodeCorrupt(t *testing.T) {
	cases := [][]byte{
		{},
		{tagBool},
		{tagInt, 1, 2},
		{tagFloat, 1},
		{tagString, 'a'},        // unterminated
		{tagString, 0x00},       // dangling escape
		{tagString, 0x00, 0x42}, // invalid escape
		{0x99},                  // unknown tag
	}
	for _, c := range cases {
		if _, _, err := DecodeNext(c); err == nil {
			t.Errorf("DecodeNext(%v) should fail", c)
		}
	}
}
