package pincushion

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"txcache/internal/interval"
	"txcache/internal/wire"
)

// Service is the interface the TxCache library uses to reach the
// pincushion; *Pincushion implements it in-process and *Client over TCP.
// GetPins — the begin-path call — takes the transaction's context: the TCP
// client maps its deadline onto the round trip and a cancelled context
// returns no pins. Register and Release stay context-free: they are the
// release path of pin bookkeeping and must run even when the transaction's
// context has already been cancelled.
type Service interface {
	GetPins(ctx context.Context, staleness time.Duration) []Pin
	Register(ts interval.Timestamp, wall time.Time)
	Release(tss []interval.Timestamp)
}

var (
	_ Service = (*Pincushion)(nil)
	_ Service = (*Client)(nil)
)

// Protocol opcodes.
const (
	opGetPins  byte = 1
	opPins     byte = 2
	opRegister byte = 3
	opRelease  byte = 4
	opAck      byte = 5
	opErr      byte = 6
)

// Serve accepts connections on l until it is closed.
func (p *Pincushion) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go p.serveConn(conn)
	}
}

func (p *Pincushion) serveConn(conn net.Conn) {
	defer conn.Close()
	for {
		req, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		resp := p.handle(req)
		_ = conn.SetWriteDeadline(time.Now().Add(serverWriteTimeout))
		if err := wire.WriteFrame(conn, resp); err != nil {
			return
		}
	}
}

func (p *Pincushion) handle(req []byte) []byte {
	d := wire.NewDecoder(req)
	switch op := d.Op(); op {
	case opGetPins:
		staleness := time.Duration(d.I64())
		if d.Err() != nil {
			return errFrame(d.Err())
		}
		//lint:allow ctxflow the wire protocol carries no context; server-side GetPins is in-memory and non-blocking
		pins := p.GetPins(context.Background(), staleness)
		e := wire.NewBuffer(opPins)
		e.U32(uint32(len(pins)))
		for _, pin := range pins {
			e.U64(uint64(pin.TS)).I64(pin.Wall.UnixNano())
		}
		return e.Bytes()
	case opRegister:
		ts := interval.Timestamp(d.U64())
		wall := time.Unix(0, d.I64())
		if d.Err() != nil {
			return errFrame(d.Err())
		}
		p.Register(ts, wall)
		return wire.NewBuffer(opAck).Bytes()
	case opRelease:
		n := d.U32()
		tss := make([]interval.Timestamp, 0, n)
		for i := uint32(0); i < n; i++ {
			tss = append(tss, interval.Timestamp(d.U64()))
		}
		if d.Err() != nil {
			return errFrame(d.Err())
		}
		p.Release(tss)
		return wire.NewBuffer(opAck).Bytes()
	default:
		return errFrame(fmt.Errorf("pincushion: unknown opcode %d", op))
	}
}

func errFrame(err error) []byte {
	return wire.NewBuffer(opErr).Str(err.Error()).Bytes()
}

// Client is a TCP client for a pincushion daemon, usable concurrently.
type Client struct {
	pool chan net.Conn
	addr string
}

// Dial connects to a pincushion daemon.
func Dial(addr string, poolSize int) (*Client, error) {
	if poolSize <= 0 {
		poolSize = 4
	}
	c := &Client{addr: addr, pool: make(chan net.Conn, poolSize)}
	for i := 0; i < poolSize; i++ {
		conn, err := net.DialTimeout("tcp", addr, opTimeout)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.pool <- conn
	}
	return c, nil
}

// Close tears down the pool.
func (c *Client) Close() {
	for {
		select {
		case conn := <-c.pool:
			conn.Close()
		default:
			return
		}
	}
}

func (c *Client) roundTrip(ctx context.Context, req []byte) ([]byte, error) {
	var conn net.Conn
	select {
	case conn = <-c.pool:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(dl)
	} else {
		_ = conn.SetDeadline(time.Time{})
	}
	if err := wire.WriteFrame(conn, req); err != nil {
		conn.Close()
		c.redial()
		return nil, err
	}
	resp, err := wire.ReadFrame(conn)
	if err != nil {
		conn.Close()
		c.redial()
		return nil, err
	}
	c.pool <- conn
	if len(resp) > 0 && resp[0] == opErr {
		d := wire.NewDecoder(resp)
		d.Op()
		return nil, errors.New(d.Str())
	}
	return resp, nil
}

func (c *Client) redial() {
	go func() {
		if conn, err := net.DialTimeout("tcp", c.addr, opTimeout); err == nil {
			c.pool <- conn
		}
	}()
}

// GetPins implements Service over TCP; on error (or a cancelled ctx,
// whose deadline bounds the round trip) it returns no pins, which the
// library treats as "pin a fresh snapshot".
func (c *Client) GetPins(ctx context.Context, staleness time.Duration) []Pin {
	if ctx == nil {
		ctx = context.Background()
	}
	resp, err := c.roundTrip(ctx, wire.NewBuffer(opGetPins).I64(int64(staleness)).Bytes())
	if err != nil {
		return nil
	}
	d := wire.NewDecoder(resp)
	if d.Op() != opPins {
		return nil
	}
	n := d.U32()
	pins := make([]Pin, 0, n)
	for i := uint32(0); i < n; i++ {
		pins = append(pins, Pin{TS: interval.Timestamp(d.U64()), Wall: time.Unix(0, d.I64())})
	}
	if d.Err() != nil {
		return nil
	}
	return pins
}

// opTimeout bounds Register/Release exchanges: they deliberately ignore
// the (possibly cancelled) transaction context because pin bookkeeping
// must survive cancellation, but a wedged daemon must not hang the
// release path forever either. A lost Release is tolerated — the daemon's
// Sweep reclaims leaked use-counts after the leak cutoff.
const opTimeout = 5 * time.Second

// serverWriteTimeout bounds one response write in the serve loop: a client
// that stops reading wedges only its own connection goroutine, briefly.
const serverWriteTimeout = 10 * time.Second

// Register implements Service over TCP; it runs on its own bounded
// context so pin bookkeeping survives the registering transaction's
// cancellation.
func (c *Client) Register(ts interval.Timestamp, wall time.Time) {
	ctx, cancel := context.WithTimeout(context.Background(), opTimeout)
	defer cancel()
	_, _ = c.roundTrip(ctx, wire.NewBuffer(opRegister).U64(uint64(ts)).I64(wall.UnixNano()).Bytes())
}

// Release implements Service over TCP; like Register it ignores the (by
// now possibly cancelled) transaction context — releasing uses must
// always be attempted or pins would linger until the daemon's
// leak-cutoff sweep.
func (c *Client) Release(tss []interval.Timestamp) {
	e := wire.NewBuffer(opRelease)
	e.U32(uint32(len(tss)))
	for _, ts := range tss {
		e.U64(uint64(ts))
	}
	ctx, cancel := context.WithTimeout(context.Background(), opTimeout)
	defer cancel()
	_, _ = c.roundTrip(ctx, e.Bytes())
}
