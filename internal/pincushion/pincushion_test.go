package pincushion

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"txcache/internal/clock"
	"txcache/internal/interval"
)

type fakeDB struct {
	mu       sync.Mutex
	unpinned []interval.Timestamp
}

func (f *fakeDB) Unpin(ts interval.Timestamp) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.unpinned = append(f.unpinned, ts)
}

func TestGetPinsFreshnessFilter(t *testing.T) {
	clk := &clock.Virtual{}
	p := New(Config{Clock: clk})
	base := clk.Now()
	p.Register(10, base)
	p.Register(20, base.Add(10*time.Second))
	p.Release([]interval.Timestamp{10, 20})
	clk.Advance(30 * time.Second)

	// Staleness 25s: only the pin from 20s ago qualifies.
	pins := p.GetPins(context.Background(), 25*time.Second)
	if len(pins) != 1 || pins[0].TS != 20 {
		t.Fatalf("pins = %+v", pins)
	}
	// Staleness 40s: both.
	pins = p.GetPins(context.Background(), 40*time.Second)
	if len(pins) != 2 || pins[0].TS != 10 || pins[1].TS != 20 {
		t.Fatalf("pins = %+v (must be sorted ascending)", pins)
	}
}

func TestSweepRespectsActiveAndRetention(t *testing.T) {
	clk := &clock.Virtual{}
	db := &fakeDB{}
	p := New(Config{Clock: clk, Retention: 15 * time.Second, DB: db})
	base := clk.Now()
	p.Register(10, base) // active=1
	p.Register(20, base)
	p.Release([]interval.Timestamp{20}) // 20 unused, 10 in use

	clk.Advance(30 * time.Second)
	if n := p.Sweep(); n != 1 {
		t.Fatalf("sweep removed %d, want 1", n)
	}
	if len(db.unpinned) != 1 || db.unpinned[0] != 20 {
		t.Fatalf("db unpins = %v", db.unpinned)
	}
	if p.Len() != 1 {
		t.Fatalf("len = %d", p.Len())
	}
	// Release then sweep removes the rest.
	p.Release([]interval.Timestamp{10})
	if n := p.Sweep(); n != 1 {
		t.Fatalf("second sweep removed %d", n)
	}
}

func TestGetPinsMarksInUse(t *testing.T) {
	clk := &clock.Virtual{}
	p := New(Config{Clock: clk, Retention: time.Second})
	p.Register(10, clk.Now())
	p.Release([]interval.Timestamp{10})

	pins := p.GetPins(context.Background(), time.Minute) // marks 10 in use again
	// Past retention but inside the leak cutoff: an in-use pin survives.
	// (Beyond leakFactor×retention with no activity it would be treated as
	// leaked — TestSweepReclaimsLeakedUses covers that.)
	clk.Advance(2 * time.Second)
	if n := p.Sweep(); n != 0 {
		t.Fatal("in-use pin must not be swept")
	}
	var tss []interval.Timestamp
	for _, pin := range pins {
		tss = append(tss, pin.TS)
	}
	p.Release(tss)
	if n := p.Sweep(); n != 1 {
		t.Fatalf("released pin should sweep, got %d", n)
	}
}

func TestNewest(t *testing.T) {
	p := New(Config{})
	if _, ok := p.Newest(); ok {
		t.Fatal("empty pincushion has no newest")
	}
	now := time.Now()
	p.Register(5, now)
	p.Register(9, now)
	p.Register(7, now)
	pin, ok := p.Newest()
	if !ok || pin.TS != 9 {
		t.Fatalf("newest = %+v", pin)
	}
}

func TestOverTCP(t *testing.T) {
	clk := &clock.Virtual{}
	p := New(Config{Clock: clk})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go p.Serve(l)

	c, err := Dial(l.Addr().String(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	c.Register(42, clk.Now())
	pins := c.GetPins(context.Background(), time.Minute)
	if len(pins) != 1 || pins[0].TS != 42 {
		t.Fatalf("pins = %+v", pins)
	}
	c.Release([]interval.Timestamp{42, 42}) // one from Register, one from GetPins
	clk.Advance(2 * time.Minute)
	if n := p.Sweep(); n != 1 {
		t.Fatalf("sweep after release = %d", n)
	}
}

func TestConcurrentUse(t *testing.T) {
	p := New(Config{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ts := interval.Timestamp(i % 20)
				p.Register(ts, time.Now())
				pins := p.GetPins(context.Background(), time.Minute)
				var tss []interval.Timestamp
				for _, pin := range pins {
					tss = append(tss, pin.TS)
				}
				tss = append(tss, ts)
				p.Release(tss)
			}
		}(g)
	}
	wg.Wait()
	// All uses balanced: everything sweepable after retention.
	if p.Len() == 0 {
		t.Fatal("expected pins to remain before sweep")
	}
}

func BenchmarkGetPins(b *testing.B) {
	p := New(Config{})
	now := time.Now()
	for i := 0; i < 10; i++ {
		p.Register(interval.Timestamp(i), now)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pins := p.GetPins(context.Background(), time.Minute)
		tss := make([]interval.Timestamp, len(pins))
		for j, pin := range pins {
			tss[j] = pin.TS
		}
		p.Release(tss)
	}
}

// TestSweepReclaimsLeakedUses: a use-count that is never released (client
// crash, or a Release lost after the daemon marked uses) must not pin the
// snapshot forever — after the leak cutoff (leakFactor × retention) Sweep
// force-unpins it. A pin with recent activity survives even while in use.
func TestSweepReclaimsLeakedUses(t *testing.T) {
	clk := &clock.Virtual{}
	db := &fakeDB{}
	p := New(Config{Clock: clk, DB: db, Retention: 10 * time.Second})
	p.Register(10, clk.Now()) // active=1, never released: the leak

	// Within the leak cutoff the pin survives every sweep.
	clk.Advance(2 * leakFactor * time.Second) // past retention, inside cutoff
	if n := p.Sweep(); n != 0 {
		t.Fatalf("sweep inside leak cutoff removed %d", n)
	}

	// Recent activity (another transaction marking the pin) resets the
	// leak clock.
	if pins := p.GetPins(context.Background(), time.Hour); len(pins) != 1 {
		t.Fatalf("pins = %+v", pins)
	}
	clk.Advance(3 * 10 * time.Second) // < leakFactor×retention since GetPins
	if n := p.Sweep(); n != 0 {
		t.Fatalf("recently-used pin swept (%d)", n)
	}

	// No activity past the cutoff: force-swept despite active > 0.
	clk.Advance(2 * leakFactor * 10 * time.Second)
	if n := p.Sweep(); n != 1 {
		t.Fatalf("leaked pin not swept (removed %d)", n)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if len(db.unpinned) != 1 || db.unpinned[0] != 10 {
		t.Fatalf("db unpins = %v, want [10]", db.unpinned)
	}
}

func TestStatsHorizonHistogram(t *testing.T) {
	clk := &clock.Virtual{}
	p := New(Config{Clock: clk, Retention: 30 * time.Second})
	base := clk.Now()

	// Four pins with staggered ages at observation time (clock advances
	// 20s after the last Register):
	//   ts=10: 80s old, held active  -> PinActive, 5-minute bucket
	//   ts=20: 40s old, released     -> PinExpired (past 30s retention)
	//   ts=30: 25s old, released     -> PinIdle, 60s bucket
	//   ts=40: 20s old, never used   -> PinIdle, 60s bucket
	p.Register(10, base)
	clk.Advance(40 * time.Second)
	p.Register(20, clk.Now())
	clk.Advance(15 * time.Second)
	p.Register(30, clk.Now())
	clk.Advance(5 * time.Second)
	p.Register(40, clk.Now())
	p.Release([]interval.Timestamp{20, 30, 40})
	clk.Advance(20 * time.Second)

	st := p.Stats()
	if st.Pins != 4 {
		t.Fatalf("Pins = %d, want 4", st.Pins)
	}
	edges := HorizonBuckets()
	sixty := 3   // index of the time.Minute edge
	fiveMin := 4 // index of the 5*time.Minute edge
	if edges[sixty] != time.Minute || edges[fiveMin] != 5*time.Minute {
		t.Fatalf("bucket edges changed (%v); update the test's expectations", edges)
	}
	var want Stats
	want.Pins = 4
	want.Requests = st.Requests
	want.Horizon[PinActive][fiveMin] = 1
	want.Horizon[PinExpired][sixty] = 1
	want.Horizon[PinIdle][sixty] = 2
	if st.Horizon != want.Horizon {
		t.Fatalf("Horizon = %v, want %v", st.Horizon, want.Horizon)
	}

	// Stats observes, never mutates: a sweep after polling behaves exactly
	// as if Stats had not been called (expired pin unpinned, active kept).
	p.cfg.DB = nil
	if n := p.Sweep(); n != 1 {
		t.Fatalf("Sweep removed %d pins, want 1 (the expired one)", n)
	}
	st = p.Stats()
	if st.Sweeps != 1 || st.Pins != 3 || st.Horizon[PinExpired] != [len(horizonBuckets) + 1]int{} {
		t.Fatalf("after sweep: %+v", st)
	}
}

func TestStatsCounters(t *testing.T) {
	clk := &clock.Virtual{}
	p := New(Config{Clock: clk, Retention: time.Second})
	p.Register(1, clk.Now())
	p.GetPins(context.Background(), time.Minute)
	p.GetPins(context.Background(), time.Minute)
	// Age the pin far past the leak cutoff with its use-count still held.
	clk.Advance(time.Hour)
	p.Sweep()
	st := p.Stats()
	if st.Requests != 2 || st.Sweeps != 1 || st.Leaked != 1 || st.Pins != 0 {
		t.Fatalf("counters: %+v", st)
	}
}

// TestSweepUnpinsEveryPlacement: the database reference-counts PIN
// placements, and two clients can race past GetPins and both ★-pin the
// same latest snapshot. The sweeper must then issue one UNPIN per PIN —
// a single UNPIN would leave the snapshot pinned forever, silently
// holding back vacuum.
func TestSweepUnpinsEveryPlacement(t *testing.T) {
	clk := &clock.Virtual{}
	db := &fakeDB{}
	p := New(Config{Clock: clk, Retention: 15 * time.Second, DB: db})
	base := clk.Now()
	p.Register(10, base) // two clients raced: both pinned snapshot 10
	p.Register(10, base)
	p.Release([]interval.Timestamp{10, 10})

	clk.Advance(30 * time.Second)
	if n := p.Sweep(); n != 1 {
		t.Fatalf("sweep removed %d pins, want 1", n)
	}
	if len(db.unpinned) != 2 || db.unpinned[0] != 10 || db.unpinned[1] != 10 {
		t.Fatalf("db unpins = %v, want [10 10]", db.unpinned)
	}
}

// TestSweepAllForcesTeardown: SweepAll unpins everything regardless of
// age or use-count — the clean-shutdown path, where nothing can still be
// using the pins and anything left would leak an engine reference.
func TestSweepAllForcesTeardown(t *testing.T) {
	clk := &clock.Virtual{}
	db := &fakeDB{}
	p := New(Config{Clock: clk, Retention: time.Hour, DB: db})
	base := clk.Now()
	p.Register(10, base) // still active, well within retention
	p.Register(20, base)
	p.Register(20, base) // double placement

	if n := p.SweepAll(); n != 2 {
		t.Fatalf("sweepall removed %d pins, want 2", n)
	}
	if p.Len() != 0 {
		t.Fatalf("len = %d after SweepAll", p.Len())
	}
	if len(db.unpinned) != 3 {
		t.Fatalf("db unpins = %v, want three (one for 10, two for 20)", db.unpinned)
	}
}

// TestStalenessEarlyTrim: with Config.Staleness set, an unused pin older
// than the staleness bound — one GetPins can never hand out again — is
// reclaimed without waiting out the (much longer) retention, so the
// database's vacuum horizon advances as soon as the pin stops mattering.
func TestStalenessEarlyTrim(t *testing.T) {
	clk := &clock.Virtual{}
	db := &fakeDB{}
	p := New(Config{Clock: clk, Retention: time.Minute, Staleness: 10 * time.Second, DB: db})
	base := clk.Now()
	p.Register(10, base)
	p.Register(20, base)
	p.Release([]interval.Timestamp{10, 20})
	p.Register(30, base) // still active: must survive any trim

	// Inside the staleness bound nothing is trimmable.
	clk.Advance(5 * time.Second)
	if n := p.Sweep(); n != 0 {
		t.Fatalf("sweep inside staleness removed %d", n)
	}

	// Past staleness but far inside retention: both idle pins go; the
	// active one stays regardless of age.
	clk.Advance(10 * time.Second)
	if at, ok := p.NextTrim(); !ok || clk.Now().Before(at) {
		t.Fatalf("NextTrim = %v ok=%v, want a due time", at, ok)
	}
	if n := p.Sweep(); n != 2 {
		t.Fatalf("early trim removed %d pins, want 2", n)
	}
	if len(db.unpinned) != 2 {
		t.Fatalf("db unpins = %v", db.unpinned)
	}
	if p.Len() != 1 {
		t.Fatalf("len = %d, want the active pin only", p.Len())
	}
}

// TestStatsClassifiesByTrimThreshold: with a staleness bound, the horizon
// histogram's expired class means "trimmable now" — unused pins past the
// staleness bound count as expired even though retention hasn't elapsed.
func TestStatsClassifiesByTrimThreshold(t *testing.T) {
	clk := &clock.Virtual{}
	p := New(Config{Clock: clk, Retention: time.Minute, Staleness: 10 * time.Second})
	base := clk.Now()
	p.Register(10, base)
	p.Release([]interval.Timestamp{10})
	clk.Advance(15 * time.Second)

	st := p.Stats()
	total := 0
	for _, n := range st.Horizon[PinExpired] {
		total += n
	}
	if total != 1 {
		t.Fatalf("expired class = %d pins, want 1 (histogram %+v)", total, st.Horizon)
	}
}
