// Package pincushion implements the pincushion daemon (paper §5.4): a
// lightweight registry of the snapshots currently pinned on the database,
// their wall-clock times, and how many running transactions might be using
// each. It answers "which pinned snapshots are fresh enough?" at the start
// of every read-only transaction and periodically unpins old unused
// snapshots.
package pincushion

import (
	"context"
	"sort"
	"sync"
	"time"

	"txcache/internal/clock"
	"txcache/internal/interval"
)

// Pin describes one pinned snapshot.
type Pin struct {
	TS   interval.Timestamp
	Wall time.Time
}

// Unpinner releases pinned snapshots on the database; *db.Engine satisfies
// it. The pincushion calls it from Sweep for pins that have aged out.
type Unpinner interface {
	Unpin(ts interval.Timestamp)
}

// Config configures a Pincushion.
type Config struct {
	// Retention is how long an unused pin is kept before Sweep unpins it on
	// the database. It should be at least the largest staleness limit any
	// application uses. Defaults to 60s.
	Retention time.Duration
	// Staleness, when set, is an upper bound on the staleness argument any
	// caller passes to GetPins. It lets Sweep trim unused pins early: a pin
	// older than this bound can never be handed out again (GetPins filters
	// by wall age), so keeping it warm until Retention only drags the
	// database's vacuum horizon — reclamation of the prefix below the
	// oldest pin that still matters would otherwise lag by up to
	// Retention ≈ 2× the staleness limit. 0 disables early trimming.
	Staleness time.Duration
	// Clock supplies wall time; defaults to the real clock.
	Clock clock.Clock
	// DB, when set, is told to UNPIN swept snapshots.
	DB Unpinner
}

type pinState struct {
	wall    time.Time
	lastUse time.Time // most recent GetPins/Register/Release touching this pin
	active  int       // running transactions that may use this snapshot
	// placed counts PIN placements on the database for this snapshot. Two
	// clients can race past GetPins and both ★-pin the same latest
	// timestamp; the database reference-counts those placements, so the
	// sweeper must issue exactly as many UNPINs as there were PINs or the
	// snapshot stays pinned forever and silently holds back vacuum.
	placed int
}

// Pincushion tracks pinned snapshots. Safe for concurrent use.
type Pincushion struct {
	cfg Config
	clk clock.Clock

	mu   sync.Mutex
	pins map[interval.Timestamp]*pinState

	statRequests uint64
	statSweeps   uint64
	statLeaked   uint64 // pins force-swept with a nonzero use-count
}

// New creates a Pincushion.
func New(cfg Config) *Pincushion {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.Retention <= 0 {
		cfg.Retention = 60 * time.Second
	}
	return &Pincushion{cfg: cfg, clk: cfg.Clock, pins: make(map[interval.Timestamp]*pinState)}
}

// GetPins returns every pinned snapshot at most staleness old, sorted by
// timestamp ascending, and flags each as possibly in use by the caller's
// transaction. The caller must Release the same set when its transaction
// ends. A cancelled ctx returns no pins (and flags nothing in use), which
// the library treats the same as an empty pincushion; in-process the call
// never blocks, so the check only stops cancelled transactions from
// acquiring uses they would immediately release.
func (p *Pincushion) GetPins(ctx context.Context, staleness time.Duration) []Pin {
	if ctx != nil && ctx.Err() != nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.statRequests++
	now := p.clk.Now()
	cutoff := now.Add(-staleness)
	var out []Pin
	for ts, st := range p.pins {
		if !st.wall.Before(cutoff) {
			st.active++
			st.lastUse = now
			out = append(out, Pin{TS: ts, Wall: st.wall})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// Register records a snapshot the caller just pinned on the database,
// marking it in use by the caller's transaction. Re-registering an existing
// snapshot adds a use.
func (p *Pincushion) Register(ts interval.Timestamp, wall time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.pins[ts]
	if st == nil {
		st = &pinState{wall: wall}
		p.pins[ts] = st
	}
	st.active++
	st.placed++
	st.lastUse = p.clk.Now()
}

// Release drops the caller's uses of the given snapshots (the set returned
// by GetPins plus any snapshot it Registered). Snapshots stay pinned on the
// database until Sweep ages them out.
func (p *Pincushion) Release(tss []interval.Timestamp) {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.clk.Now()
	for _, ts := range tss {
		if st := p.pins[ts]; st != nil && st.active > 0 {
			st.active--
			st.lastUse = now
		}
	}
}

// leakFactor scales the retention threshold into the leak cutoff: a pin
// whose use-count has been nonzero with no GetPins/Register/Release
// activity for leakFactor × Retention is considered leaked (a client
// crashed, or a network fault lost a Release after the daemon had marked
// uses) and is swept anyway. This is safe for running transactions: once
// a transaction begins its database snapshot it holds its own engine pin
// (db.BeginTx pins, Abort/Commit unpin), so the pincushion reference only
// protects the short window between GetPins and the first query — far
// shorter than the leak cutoff.
const leakFactor = 4

// trimAge is the age past which an unused pin is reclaimed: Retention,
// tightened to the staleness bound when Config.Staleness promises that no
// GetPins call can ever return a pin that old again.
func (p *Pincushion) trimAge() time.Duration {
	if p.cfg.Staleness > 0 && p.cfg.Staleness < p.cfg.Retention {
		return p.cfg.Staleness
	}
	return p.cfg.Retention
}

// Sweep unpins snapshots that are unused and older than the trim threshold
// (Retention, or the tighter Config.Staleness bound) — plus pins whose
// use-counts have leaked (see leakFactor) — returning how many were
// removed. Run it periodically.
func (p *Pincushion) Sweep() int {
	p.mu.Lock()
	now := p.clk.Now()
	cutoff := now.Add(-p.trimAge())
	leakCutoff := now.Add(-leakFactor * p.cfg.Retention)
	var victims []pinRef
	for ts, st := range p.pins {
		switch {
		case st.active == 0 && st.wall.Before(cutoff):
			victims = append(victims, pinRef{ts, st.placed})
		case st.active > 0 && st.wall.Before(cutoff) && st.lastUse.Before(leakCutoff):
			p.statLeaked++
			victims = append(victims, pinRef{ts, st.placed})
		}
	}
	for _, v := range victims {
		delete(p.pins, v.ts)
	}
	p.statSweeps++
	p.mu.Unlock()
	p.unpin(victims)
	return len(victims)
}

// pinRef pairs a swept timestamp with how many PIN placements it carries.
type pinRef struct {
	ts     interval.Timestamp
	placed int
}

// unpin releases every placement of each swept pin on the database,
// outside the registry lock: the database takes its own locks, and it
// reference-counts placements, so one UNPIN per PIN.
func (p *Pincushion) unpin(victims []pinRef) {
	if p.cfg.DB == nil {
		return
	}
	for _, v := range victims {
		n := v.placed
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			p.cfg.DB.Unpin(v.ts)
		}
	}
}

// SweepAll unpins every tracked snapshot regardless of age or use-count,
// returning how many were removed. Teardown only: a drained deployment has
// no transaction left that could use them, and any pin that outlives the
// daemon would hold the database's vacuum horizon forever.
func (p *Pincushion) SweepAll() int {
	p.mu.Lock()
	victims := make([]pinRef, 0, len(p.pins))
	for ts, st := range p.pins {
		victims = append(victims, pinRef{ts, st.placed})
	}
	p.pins = make(map[interval.Timestamp]*pinState)
	p.statSweeps++
	p.mu.Unlock()
	p.unpin(victims)
	return len(victims)
}

// PinClass partitions the tracked pins by how they interact with the
// database's vacuum horizon: every pin holds the horizon back to its
// snapshot, but what the system can do about it differs by class.
type PinClass int

const (
	// PinActive pins are flagged in use by at least one running
	// transaction; the database must retain their snapshots regardless of
	// age. A heavy tail of old active pins is what makes short-horizon
	// vacuuming ineffective.
	PinActive PinClass = iota
	// PinIdle pins are unused but within retention, kept warm so the next
	// read-only transaction can share an already-pinned snapshot.
	PinIdle
	// PinExpired pins are unused and past the trim threshold (Retention, or
	// the tighter Config.Staleness bound): the next Sweep will unpin them.
	// A persistent PinExpired population means the sweeper is running too
	// rarely for the configured thresholds — every pin in this class is
	// pointlessly holding the database's vacuum horizon back.
	PinExpired

	numPinClasses
)

func (c PinClass) String() string {
	return [...]string{"active", "idle", "expired"}[c]
}

// horizonBuckets are the inclusive upper edges of the Stats age histogram;
// ages beyond the last edge land in the overflow bucket. The edges skew
// short because the open question is vacuum behavior at short horizons —
// sub-retention resolution is the point.
var horizonBuckets = [...]time.Duration{
	time.Second, 5 * time.Second, 15 * time.Second, time.Minute, 5 * time.Minute,
}

// HorizonBuckets returns the histogram's bucket edges (a copy); bucket i of
// Stats.Horizon counts pins aged at most edge i, and the final bucket
// collects everything older.
func HorizonBuckets() []time.Duration {
	out := make([]time.Duration, len(horizonBuckets))
	copy(out, horizonBuckets[:])
	return out
}

// Stats is a read-only snapshot of the pincushion's counters and of the
// current pin population's age distribution.
type Stats struct {
	Requests uint64 // GetPins calls served
	Sweeps   uint64 // Sweep passes completed
	Leaked   uint64 // pins force-swept with a nonzero use-count
	Pins     int    // pins currently tracked

	// Horizon[c][i] counts tracked pins of class c whose age (now minus
	// the pin's snapshot wall time — exactly how far back the pin holds
	// the database's vacuum horizon) is within the i'th HorizonBuckets
	// edge; the last column is the overflow. Observability only: Stats
	// takes the same snapshot lock as GetPins but mutates nothing.
	Horizon [numPinClasses][len(horizonBuckets) + 1]int
}

// Stats returns a snapshot of counters and the per-class horizon histogram.
func (p *Pincushion) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := Stats{
		Requests: p.statRequests,
		Sweeps:   p.statSweeps,
		Leaked:   p.statLeaked,
		Pins:     len(p.pins),
	}
	now := p.clk.Now()
	cutoff := now.Add(-p.trimAge())
	for _, ps := range p.pins {
		var c PinClass
		switch {
		case ps.active > 0:
			c = PinActive
		case ps.wall.Before(cutoff):
			c = PinExpired
		default:
			c = PinIdle
		}
		age := now.Sub(ps.wall)
		b := 0
		for b < len(horizonBuckets) && age > horizonBuckets[b] {
			b++
		}
		st.Horizon[c][b]++
	}
	return st
}

// Len returns the number of tracked pins.
func (p *Pincushion) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pins)
}

// Newest returns the most recent pin and whether one exists.
func (p *Pincushion) Newest() (Pin, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var best Pin
	found := false
	for ts, st := range p.pins {
		if !found || ts > best.TS {
			best = Pin{TS: ts, Wall: st.wall}
			found = true
		}
	}
	return best, found
}

// NextTrim reports when the next currently-unused pin crosses the trim
// threshold (false if no unused pins are tracked). The sweeper uses it to
// schedule the pass that reclaims the vacuum-horizon prefix below the
// oldest pin that still matters, instead of letting expired pins sit until
// the next fixed tick.
func (p *Pincushion) NextTrim() (time.Time, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var at time.Time
	found := false
	for _, st := range p.pins {
		if st.active > 0 {
			continue
		}
		t := st.wall.Add(p.trimAge())
		if !found || t.Before(at) {
			at = t
			found = true
		}
	}
	return at, found
}

// RunSweeper sweeps until stop is closed: at least every interval, and
// sooner when NextTrim says an idle pin is about to become reclaimable —
// the per-class horizon histogram in Stats shows the payoff as an empty
// expired class.
func (p *Pincushion) RunSweeper(every time.Duration, stop <-chan struct{}) {
	t := time.NewTimer(every)
	defer t.Stop()
	for {
		wait := every
		if at, ok := p.NextTrim(); ok {
			// Floor the adaptive delay so a burst of near-expiry pins cannot
			// degenerate into a busy loop of one-victim sweeps.
			if d := at.Sub(p.clk.Now()); d < wait {
				wait = max(d, every/8, 10*time.Millisecond)
			}
		}
		t.Reset(wait)
		select {
		case <-t.C:
			p.Sweep()
		case <-stop:
			return
		}
	}
}
