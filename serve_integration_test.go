package txcache_test

import (
	"context"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"txcache/internal/bench"
	"txcache/internal/loadgen"
	"txcache/internal/rubis"
)

// serve_integration_test.go drives the full application tier end to end:
// HTTP clients → txcache-serve → {cache nodes, database daemon, pincushion},
// every hop over real loopback TCP, under open-loop load — arrivals on a
// wall-clock schedule that does not slow down when the server does. It
// checks the two properties a production deployment needs beyond raw
// correctness: consistency holds under bursty concurrent load, and shutdown
// under fire shed-or-finishes every request with nothing lost or leaked.

// TestServeOpenLoopEndToEnd boots the whole topology, applies a bursty
// open-loop workload, and then asks the server's consistency oracle to
// re-audit the data. Teardown must leave zero pinned snapshots and no
// stray goroutines.
func TestServeOpenLoopEndToEnd(t *testing.T) {
	before := runtime.NumGoroutine()

	st, err := bench.StartServeStack(bench.ServeStackConfig{
		Scale: rubis.TestScale, WikiPages: 5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	stopped := false
	defer func() {
		if !stopped {
			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer cancel()
			st.Stop(ctx)
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	ranges, err := loadgen.ProbeRanges(ctx, st.URL)
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	if ranges.WikiPages != 5 {
		t.Fatalf("probed wiki pages = %d, want 5", ranges.WikiPages)
	}

	target := loadgen.NewHTTPTarget(st.URL, ranges, 64, 20)
	defer target.Close()
	res := loadgen.Run(target, loadgen.Config{
		Schedule: loadgen.Burst{Peak: 800, Period: 400 * time.Millisecond, Duty: 200 * time.Millisecond},
		Duration: 4 * time.Second,
		Warmup:   500 * time.Millisecond,
		Workers:  64,
		Timeout:  10 * time.Second,
		Seed:     3,
	})
	t.Logf("open-loop burst: %v", res)
	if res.Errors > 0 || res.Timeouts > 0 || res.Dropped > 0 {
		t.Fatalf("burst run not clean: %v", res)
	}
	if res.Completed < 100 {
		t.Fatalf("too few requests completed: %v", res)
	}

	// The consistency oracle: /check re-reads a random item through the
	// cache and its bid table around the cache in one snapshot, and fails
	// the request if the cached aggregates disagree with the ground truth.
	check := loadgen.NewHTTPTarget(st.URL, ranges, 1, 0)
	check.CheckOnly = true
	defer check.Close()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 30; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := check.Do(ctx, rng, 0)
		cancel()
		if err != nil {
			t.Fatalf("consistency check %d: %v", i, err)
		}
	}
	if v := st.Srv.Stats().Violations.Load(); v > 0 {
		t.Fatalf("%d consistency violations under open-loop load", v)
	}

	sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := st.Stop(sctx); err != nil {
		t.Fatalf("teardown: %v", err)
	}
	stopped = true

	// Everything torn down: the goroutine population must return to (about)
	// its pre-boot level — a stuck server loop, push stream, or connection
	// handler would hold it up.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+8 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d before, %d after teardown\n%s",
				before, now, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestServeDrainUnderFire overloads a deliberately tiny server (2 in-flight
// slots, 8 queue slots) and drains it mid-storm. The contract: drain
// completes within its bound, every queued request is shed, the server's
// Shed and Canceled counters agree exactly, and every shed surfaces at the
// load generator as a 503 or a connection error — no request just vanishes.
func TestServeDrainUnderFire(t *testing.T) {
	st, err := bench.StartServeStack(bench.ServeStackConfig{
		Scale:          rubis.TestScale,
		MaxInFlight:    2,
		MaxQueue:       8,
		RequestTimeout: 5 * time.Second,
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := st.Stop(ctx); err != nil {
			t.Errorf("teardown: %v", err)
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	ranges, err := loadgen.ProbeRanges(ctx, st.URL)
	cancel()
	if err != nil {
		t.Fatal(err)
	}

	// Open-loop fire hose at ~3000/s nominal against a server whose capacity
	// is two requests at a time: the backlog saturates and stays saturated.
	// The client-side timeout (8s) exceeds the server's request timeout (5s),
	// so every response the server writes — including every shed 503 — is
	// read and accounted by the load generator, never abandoned first.
	target := loadgen.NewHTTPTarget(st.URL, ranges, 128, 0)
	defer target.Close()
	lctx, lcancel := context.WithCancel(context.Background())
	defer lcancel()
	resCh := make(chan *loadgen.Result, 1)
	go func() {
		resCh <- loadgen.Run(target, loadgen.Config{
			Schedule: loadgen.Poisson{PerSec: 3000},
			Duration: 60 * time.Second, // cut short by lcancel
			Workers:  128,
			Timeout:  8 * time.Second,
			Seed:     7,
			Ctx:      lctx,
		})
	}()

	// Let the storm establish itself.
	stats := st.Srv.Stats()
	deadline := time.Now().Add(20 * time.Second)
	for stats.Requests.Load() < 300 {
		if time.Now().After(deadline) {
			t.Fatal("load never ramped up")
		}
		time.Sleep(10 * time.Millisecond)
	}

	preShed := stats.Shed.Load()
	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	start := time.Now()
	err = st.Srv.Drain(dctx)
	dcancel()
	if err != nil {
		t.Fatalf("drain under fire: %v", err)
	}
	t.Logf("drained in %v (%d shed before, %d after)", time.Since(start), preShed, stats.Shed.Load())
	if stats.Shed.Load() <= preShed {
		t.Fatal("drain shed nothing: the saturated queue should have been rejected")
	}

	// Give workers a beat to read any already-written responses, then stop
	// the arrival schedule; post-drain arrivals see connection-refused and
	// count as plain errors, which is exactly what a dead listener earns.
	time.Sleep(300 * time.Millisecond)
	lcancel()
	res := <-resCh
	t.Logf("load result: %v", res)

	shed, canceled := stats.Shed.Load(), stats.Canceled.Load()
	if shed != canceled {
		t.Fatalf("accounting broken: server shed %d but canceled %d", shed, canceled)
	}
	// Every server-side shed must surface on the client as either the 503 or
	// a broken connection — during shutdown a RST can beat a buffered 503 to
	// the client — and never as a silent hang: a shed whose client saw
	// nothing would show up as a timeout (client patience far exceeds every
	// server bound here).
	if res.Sheds == 0 || res.Sheds > shed {
		t.Fatalf("shed accounting: server shed %d, load generator observed %d", shed, res.Sheds)
	}
	if lost := shed - res.Sheds; lost > res.Errors {
		t.Fatalf("%d sheds unaccounted for: server shed %d, client saw %d sheds and %d errors",
			lost, shed, res.Sheds, res.Errors)
	}
	if res.Timeouts != 0 {
		t.Fatalf("requests timed out client-side (shed responses went missing): %v", res)
	}
	if res.Completed == 0 {
		t.Fatalf("nothing completed before the drain: %v", res)
	}
}
