// Package txcache is a transactional application-data cache with automatic
// management, reproducing "Transactional Consistency and Automatic
// Management in an Application Data Cache" (Ports, Clements, Zhang, Madden,
// Liskov — OSDI 2010).
//
// TxCache guarantees that all data an application sees during a read-only
// transaction — whether it came from the cache or from the database —
// reflects one consistent, possibly slightly stale, snapshot of the
// database. Applications get caching by declaring cacheable functions;
// TxCache memoizes them, names their cache entries, tracks their database
// dependencies, and invalidates them automatically when the database
// changes.
//
// The facade re-exports the pieces of a complete deployment:
//
//   - Client / Tx / MakeCacheable — the application-side library (paper §6)
//   - Engine — the multiversion database substrate with validity-interval
//     tracking and invalidation tags (paper §5)
//   - CacheServer — the versioned cache node (paper §4)
//   - Pincushion — the pinned-snapshot registry (paper §5.4)
//   - Bus — the ordered invalidation stream (paper §4.2)
//
// A minimal in-process deployment:
//
//	bus := txcache.NewBus(false)
//	engine := txcache.NewEngine(txcache.EngineOptions{Bus: bus})
//	node := txcache.NewCacheServer(txcache.CacheConfig{})
//	go node.ConsumeStream(bus.Subscribe())
//	pc := txcache.NewPincushion(txcache.PincushionConfig{DB: engine})
//	client := txcache.NewClient(txcache.Config{
//		DB:         txcache.WrapEngine(engine),
//		Nodes:      map[string]txcache.CacheNode{"local": node},
//		Pincushion: pc,
//	})
//
//	getUser := txcache.MakeCacheable(client, "getUser",
//		func(tx *txcache.Tx, args ...txcache.Value) (string, error) {
//			r, err := tx.Query("SELECT name FROM users WHERE id = ?", args...)
//			if err != nil || len(r.Rows) == 0 {
//				return "", err
//			}
//			return r.Rows[0][0].(string), nil
//		})
//
//	tx, err := client.Begin(ctx, txcache.WithStaleness(30*time.Second))
//	name, err := getUser(tx, int64(7))
//	ts, err := tx.Commit()
//
// Or, with the closure runners (which begin, commit, release pins on every
// exit path, and retry read/write serialization conflicts):
//
//	var name string
//	ts, err := client.ReadOnly(ctx, func(tx *txcache.Tx) error {
//		var err error
//		name, err = getUser(tx, int64(7))
//		return err
//	})
//
// Every transaction is bound to a context: cancel it (or let its deadline
// pass) and the transaction's statements, cache lookups, and remote round
// trips stop promptly, releasing pinned snapshots on the way out. See
// DESIGN.md ("Public API & context semantics") for the exact guarantees at
// each layer and EXPERIMENTS.md for the reproduction of the paper's
// evaluation.
package txcache

import (
	"time"

	"txcache/internal/cacheserver"
	"txcache/internal/clock"
	"txcache/internal/core"
	"txcache/internal/db"
	"txcache/internal/interval"
	"txcache/internal/invalidation"
	"txcache/internal/pincushion"
	"txcache/internal/sql"
)

// Timestamp is a logical commit timestamp assigned by the database.
type Timestamp = interval.Timestamp

// Infinity is the upper bound of still-valid intervals.
const Infinity = interval.Infinity

// Interval is a half-open validity interval [Lo, Hi).
type Interval = interval.Interval

// Value is a SQL value: nil, int64, float64, string, or bool.
type Value = sql.Value

// Client is the TxCache library handle (paper §6).
type Client = core.Client

// Config configures a Client.
type Config = core.Config

// Tx is a TxCache transaction (BEGIN-RO/BEGIN-RW of paper Figure 2),
// started with Client.Begin (or the ReadOnly/ReadWrite closure runners)
// and bound to the context given there.
type Tx = core.Tx

// TxOption configures a transaction started by Client.Begin, ReadOnly, or
// ReadWrite.
type TxOption = core.TxOption

// WithStaleness bounds how stale the read-only transaction's snapshot may
// be; without it Config.DefaultStaleness (30s) applies.
func WithStaleness(d time.Duration) TxOption { return core.WithStaleness(d) }

// WithMinTimestamp guarantees the snapshot is no older than ts; thread a
// Commit's timestamp into the next transaction for session causality.
func WithMinTimestamp(ts Timestamp) TxOption { return core.WithMinTimestamp(ts) }

// WithReadWrite makes the transaction read/write (latest state, cache
// bypassed).
func WithReadWrite() TxOption { return core.WithReadWrite() }

// WithoutCache runs a read-only transaction with the cache disabled;
// consistency guarantees are unchanged.
func WithoutCache() TxOption { return core.WithoutCache() }

// Tx errors.
var (
	// ErrTxDone is returned when using a finished transaction.
	ErrTxDone = core.ErrTxDone
	// ErrReadOnly is returned when a read-only transaction writes.
	ErrReadOnly = core.ErrReadOnly
)

// ClientStats aggregates library counters.
type ClientStats = core.ClientStats

// NewClient builds a library instance.
func NewClient(cfg Config) *Client { return core.NewClient(cfg) }

// MakeCacheable wraps a pure function of (arguments, database state) into a
// memoized cacheable function (paper Figure 2). T must be gob-encodable.
func MakeCacheable[T any](c *Client, name string, fn core.Cacheable[T]) core.Cacheable[T] {
	return core.MakeCacheable(c, name, fn)
}

// CacheKey derives the cache key of one cacheable call; applications build
// key sets with it for Tx.Prefetch, which resolves them in batched
// round trips (one per responsible cache node).
func CacheKey(name string, args ...Value) string { return core.CacheKey(name, args...) }

// Engine is the multiversion database substrate (paper §5).
type Engine = db.Engine

// EngineOptions configures an Engine.
type EngineOptions = db.Options

// EngineStats is a snapshot of engine counters.
type EngineStats = db.Stats

// Result is a query result with validity metadata.
type Result = db.Result

// PoolConfig simulates a bounded buffer cache with disk-read penalties.
type PoolConfig = db.PoolConfig

// NewEngine creates an empty database engine.
func NewEngine(opts EngineOptions) *Engine { return db.New(opts) }

// WrapEngine adapts an *Engine to the Client's DB interface.
func WrapEngine(e *Engine) core.DB { return core.EngineDB{Engine: e} }

// ErrSerialization is the retryable first-committer-wins conflict error.
var ErrSerialization = db.ErrSerialization

// CacheServer is one versioned cache node (paper §4).
type CacheServer = cacheserver.Server

// CacheConfig configures a cache node.
type CacheConfig = cacheserver.Config

// CacheNode is the node interface (in-process server or TCP client).
type CacheNode = cacheserver.Node

// CacheStats are cache-node counters, including the Figure 8 miss taxonomy.
type CacheStats = cacheserver.Stats

// CacheClient is the multiplexed TCP client for a remote cache node:
// pipelined tagged requests over a small connection pool, asynchronous
// puts, and batched multi-key lookups.
type CacheClient = cacheserver.Client

// CacheClientStats are client-side transport counters (put drops/errors,
// reconnects, timeouts), as opposed to the remote node's CacheStats.
type CacheClientStats = cacheserver.ClientStats

// CacheBatchLookup is one probe of a batched multi-key lookup.
type CacheBatchLookup = cacheserver.BatchLookup

// CacheLookupResult is the reply to a cache lookup.
type CacheLookupResult = cacheserver.LookupResult

// NewCacheServer creates a cache node.
func NewCacheServer(cfg CacheConfig) *CacheServer { return cacheserver.New(cfg) }

// DialCache connects to a remote cache node.
func DialCache(addr string, poolSize int) (*CacheClient, error) {
	return cacheserver.Dial(addr, poolSize)
}

// Pincushion tracks pinned snapshots (paper §5.4).
type Pincushion = pincushion.Pincushion

// PincushionConfig configures a Pincushion.
type PincushionConfig = pincushion.Config

// NewPincushion creates a pincushion.
func NewPincushion(cfg PincushionConfig) *Pincushion { return pincushion.New(cfg) }

// DialPincushion connects to a remote pincushion daemon.
func DialPincushion(addr string, poolSize int) (*pincushion.Client, error) {
	return pincushion.Dial(addr, poolSize)
}

// Bus is the ordered invalidation stream fan-out (paper §4.2).
type Bus = invalidation.Bus

// InvalidationTag is a dependency tag ("table:column=key" or "table:?").
type InvalidationTag = invalidation.Tag

// TagID is an interned invalidation tag (the compact form the hot paths
// carry; see invalidation.TagID).
type TagID = invalidation.TagID

// InternTag returns the TagID for a tag, assigning one on first sight.
func InternTag(t InvalidationTag) TagID { return invalidation.Intern(t) }

// TagOf recovers the struct form of an interned tag.
func TagOf(id TagID) InvalidationTag { return invalidation.TagOf(id) }

// NewBus creates an invalidation bus; keepHistory replays messages to late
// subscribers.
func NewBus(keepHistory bool) *Bus { return invalidation.NewBus(keepHistory) }

// Clock abstracts wall time (real in production, virtual in tests).
type Clock = clock.Clock

// VirtualClock is a manually-advanced clock for deterministic tests.
type VirtualClock = clock.Virtual
