module txcache

go 1.24
