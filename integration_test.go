package txcache_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"txcache"
	"txcache/internal/core"
	"txcache/internal/db"
	"txcache/internal/db/dbnet"
	"txcache/internal/rubis"
)

// integration_test.go stands up the complete distributed topology of the
// paper's Figure 1 — database daemon, two cache nodes, pincushion, all over
// real TCP — and checks the system's headline guarantee end to end: no
// read-only transaction ever observes a state that violates an invariant
// the write transactions preserve.

type cluster struct {
	engine *txcache.Engine
	client *txcache.Client
}

func startCluster(t *testing.T) *cluster {
	t.Helper()
	bus := txcache.NewBus(false)
	engine := txcache.NewEngine(txcache.EngineOptions{Bus: bus})

	listen := func() net.Listener {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		return l
	}

	// Cache nodes.
	nodes := map[string]txcache.CacheNode{}
	for i := 0; i < 2; i++ {
		node := txcache.NewCacheServer(txcache.CacheConfig{CapacityBytes: 4 << 20})
		sub := bus.Subscribe()
		go node.ConsumeStream(sub)
		t.Cleanup(sub.Close)
		l := listen()
		go node.Serve(l)
		cn, err := txcache.DialCache(l.Addr().String(), 4)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cn.Close)
		nodes[fmt.Sprintf("node%d", i)] = cn
	}

	// Database daemon.
	dbL := listen()
	go (&dbnet.Server{Engine: engine}).Serve(dbL)
	dbClient, err := dbnet.Dial(dbL.Addr().String(), 8)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dbClient.Close)

	// Pincushion daemon.
	pcDB, err := dbnet.Dial(dbL.Addr().String(), 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pcDB.Close)
	pc := txcache.NewPincushion(txcache.PincushionConfig{DB: pcDB, Retention: 10 * time.Second})
	pcL := listen()
	go pc.Serve(pcL)
	pcClient, err := txcache.DialPincushion(pcL.Addr().String(), 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pcClient.Close)

	client := core.NewClient(core.Config{
		DB:         dbClient,
		Nodes:      nodes,
		Pincushion: pcClient,
	})
	return &cluster{engine: engine, client: client}
}

func TestDistributedConsistencyOverTCP(t *testing.T) {
	cl := startCluster(t)
	const nAcct = 8
	const total = int64(nAcct * 100)

	if err := cl.engine.DDL(`CREATE TABLE accounts (id BIGINT PRIMARY KEY, balance BIGINT)`); err != nil {
		t.Fatal(err)
	}
	rw, err := cl.client.BeginRW()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nAcct; i++ {
		if _, err := rw.Exec("INSERT INTO accounts (id, balance) VALUES (?, ?)", int64(i), int64(100)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rw.Commit(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // drain the invalidation stream

	getBalance := txcache.MakeCacheable(cl.client, "it.getBalance",
		func(tx *txcache.Tx, args ...txcache.Value) (int64, error) {
			r, err := tx.Query("SELECT balance FROM accounts WHERE id = ?", args...)
			if err != nil || len(r.Rows) == 0 {
				return 0, err
			}
			return r.Rows[0][0].(int64), nil
		})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 32)

	// One writer moving money (conserving the total) over TCP.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			from, to := int64(i%nAcct), int64((i+3)%nAcct)
			if from == to {
				continue
			}
			// The ReadWrite runner owns begin/commit/abort and the
			// serialization-conflict retry loop the old RetryRW idiom
			// hand-rolled.
			_, err := cl.client.ReadWrite(context.Background(), func(rw *txcache.Tx) error {
				r, err := rw.Query("SELECT balance FROM accounts WHERE id = ?", from)
				if err != nil || len(r.Rows) == 0 {
					return err
				}
				bal := r.Rows[0][0].(int64)
				if bal < 10 {
					return nil // nothing to move; the empty commit is free
				}
				r2, err := rw.Query("SELECT balance FROM accounts WHERE id = ?", to)
				if err != nil || len(r2.Rows) == 0 {
					return err
				}
				rw.Exec("UPDATE accounts SET balance = ? WHERE id = ?", bal-10, from)
				rw.Exec("UPDATE accounts SET balance = ? WHERE id = ?", r2.Rows[0][0].(int64)+10, to)
				return nil
			})
			if err != nil && !errors.Is(err, db.ErrSerialization) {
				errs <- err
				return
			}
		}
	}()

	// Readers summing through cacheable functions over TCP.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tx, err := cl.client.Begin(context.Background(), txcache.WithStaleness(30*time.Second))
				if err != nil {
					errs <- err
					return
				}
				var sum int64
				bad := false
				for id := int64(0); id < nAcct; id++ {
					v, err := getBalance(tx, id)
					if err != nil {
						errs <- err
						bad = true
						break
					}
					sum += v
				}
				tx.Commit()
				if !bad && sum != total {
					errs <- fmt.Errorf("reader %d iter %d: inconsistent sum %d != %d", g, i, sum, total)
					return
				}
			}
		}(g)
	}

	time.Sleep(1500 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if cl.client.Stats().Hits() == 0 {
		t.Fatal("distributed run never hit the cache")
	}
	if cl.engine.Stats().Commits < 10 {
		t.Fatalf("writer barely ran: %+v", cl.engine.Stats())
	}
}

// TestDistributedRUBiSOverTCP runs a short RUBiS burst against the TCP
// cluster — the same topology as examples/auction, as a regression test.
func TestDistributedRUBiSOverTCP(t *testing.T) {
	cl := startCluster(t)
	ds, err := rubis.Load(cl.engine, rubis.TestScale, 21)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	app := rubis.NewApp(cl.client, ds)
	res := rubis.RunEmulator(app, rubis.EmulatorConfig{
		Clients: 6, Staleness: 30 * time.Second, Duration: time.Second, Seed: 3,
	})
	if res.Errors > 0 {
		t.Fatalf("errors: %+v", res)
	}
	if res.Requests < 100 {
		t.Fatalf("too slow over loopback TCP: %+v", res)
	}
	if cl.client.Stats().Hits() == 0 {
		t.Fatal("no cache hits over TCP")
	}
}
