// Benchmarks regenerating the paper's evaluation (§8), one per table or
// figure. Each benchmark drives the RUBiS bidding mix against a complete
// in-process deployment and reports throughput (the `req/s` metric, the
// paper's y-axis) and the cache hit rate where relevant.
//
// The full experiment harness with printed paper-style tables is
// `go run ./cmd/txcache-bench -exp all`; these testing.B entry points run
// the same code at reduced scale so `go test -bench=.` stays tractable.
package txcache_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	txcache "txcache"

	"txcache/internal/bench"
	"txcache/internal/db"
	"txcache/internal/interval"
	"txcache/internal/invalidation"
	"txcache/internal/rubis"
)

// runMix drives b.N interactions of the bidding mix through the site with
// parallel workers and reports req/s and hit rate.
func runMix(b *testing.B, site *bench.Site, stalenessPaperSec float64) {
	b.Helper()
	staleness := time.Duration(stalenessPaperSec * bench.TimeScale * float64(time.Second))
	// Short warmup so compulsory misses do not dominate tiny runs.
	rubis.RunEmulator(site.App, rubis.EmulatorConfig{
		Clients: 8, Staleness: staleness, Duration: 300 * time.Millisecond, Seed: 42,
	})
	site.ResetStats()
	var seed atomic.Int64
	start := time.Now()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(1000 + seed.Add(1)))
		user := int64(rng.Intn(site.App.DS.Scale.Users))
		for pb.Next() {
			_ = site.App.DoInteraction(context.Background(), rng, user, -1, staleness)
		}
	})
	b.StopTimer()
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N)/elapsed, "req/s")
	}
	cs := site.CacheStats()
	if cs.Lookups > 0 {
		b.ReportMetric(100*float64(cs.Hits)/float64(cs.Lookups), "hit%")
	}
}

func buildSite(b *testing.B, cfg bench.SiteConfig) *bench.Site {
	b.Helper()
	if cfg.Scale.Users == 0 {
		cfg.Scale = rubis.TestScale
	}
	cfg.Seed = 7
	site, err := bench.BuildSite(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(site.Close)
	return site
}

// BenchmarkBaseline reproduces §8.1's no-cache baselines (928 req/s
// in-memory, 136 req/s disk-bound on the authors' testbed; shape only).
func BenchmarkBaseline(b *testing.B) {
	b.Run("in-memory", func(b *testing.B) {
		runMix(b, buildSite(b, bench.SiteConfig{Mode: bench.ModeBaseline}), 30)
	})
	b.Run("disk-bound", func(b *testing.B) {
		runMix(b, buildSite(b, bench.SiteConfig{Mode: bench.ModeBaseline, Pool: bench.DiskPool()}), 30)
	})
	b.Run("stock-db", func(b *testing.B) {
		// §8.1: "no observable difference" between stock and modified DBs.
		runMix(b, buildSite(b, bench.SiteConfig{Mode: bench.ModeBaseline, DisableValidityTracking: true}), 30)
	})
}

// BenchmarkFigure5a: peak throughput vs cache size, in-memory database,
// for TxCache and the no-consistency comparator (plus BenchmarkBaseline).
func BenchmarkFigure5a(b *testing.B) {
	for _, size := range []int64{256 << 10, 1 << 20, 4 << 20, 16 << 20} {
		for _, mode := range []bench.Mode{bench.ModeTxCache, bench.ModeNoConsistency} {
			b.Run(fmt.Sprintf("%s/cache=%dKB", mode, size>>10), func(b *testing.B) {
				runMix(b, buildSite(b, bench.SiteConfig{Mode: mode, CacheBytes: size}), 30)
			})
		}
	}
}

// BenchmarkFigure5b: peak throughput vs cache size, disk-bound database.
func BenchmarkFigure5b(b *testing.B) {
	for _, size := range []int64{512 << 10, 4 << 20, 16 << 20} {
		b.Run(fmt.Sprintf("cache=%dKB", size>>10), func(b *testing.B) {
			runMix(b, buildSite(b, bench.SiteConfig{
				Mode: bench.ModeTxCache, CacheBytes: size, Pool: bench.DiskPool(),
			}), 30)
		})
	}
}

// BenchmarkFigure6 reports the hit-rate metric across cache sizes (the
// hit%% metric of each sub-benchmark is the figure's y-axis).
func BenchmarkFigure6(b *testing.B) {
	for _, size := range []int64{256 << 10, 1 << 20, 4 << 20, 16 << 20} {
		b.Run(fmt.Sprintf("cache=%dKB", size>>10), func(b *testing.B) {
			runMix(b, buildSite(b, bench.SiteConfig{Mode: bench.ModeTxCache, CacheBytes: size}), 30)
		})
	}
}

// BenchmarkFigure7: throughput vs staleness limit (paper seconds).
func BenchmarkFigure7(b *testing.B) {
	for _, st := range []float64{1, 10, 30, 120} {
		b.Run(fmt.Sprintf("staleness=%gs", st), func(b *testing.B) {
			runMix(b, buildSite(b, bench.SiteConfig{
				Mode: bench.ModeTxCache, CacheBytes: 4 << 20, StalenessPaperSec: st,
			}), st)
		})
	}
}

// BenchmarkFigure8 runs the four miss-breakdown configurations and reports
// the consistency-miss share (the paper's headline: it is the rarest kind).
func BenchmarkFigure8(b *testing.B) {
	configs := []struct {
		name  string
		bytes int64
		stale float64
		pool  *db.PoolConfig
	}{
		{"in-mem-2MB-30s", 2 << 20, 30, nil},
		{"in-mem-2MB-15s", 2 << 20, 15, nil},
		{"in-mem-256KB-30s", 256 << 10, 30, nil},
		{"disk-16MB-30s", 16 << 20, 30, bench.DiskPool()},
	}
	for _, c := range configs {
		b.Run(c.name, func(b *testing.B) {
			site := buildSite(b, bench.SiteConfig{
				Mode: bench.ModeTxCache, CacheBytes: c.bytes,
				StalenessPaperSec: c.stale, Pool: c.pool,
			})
			runMix(b, site, c.stale)
			cs := site.CacheStats()
			if m := cs.Misses(); m > 0 {
				b.ReportMetric(100*float64(cs.MissConsistency)/float64(m), "consistency-miss%")
				b.ReportMetric(100*float64(cs.MissCompulsory)/float64(m), "compulsory-miss%")
				b.ReportMetric(100*float64(cs.MissStaleness+cs.MissCapacity)/float64(m), "stale+cap-miss%")
			}
		})
	}
}

// BenchmarkWriteHeavy drives the update/insert-skewed mix (60% read/write)
// against the full deployment, with and without extra write-hot secondary
// indexes — the commit-path counterpart of BenchmarkFigure5a. The
// experiment-harness form (with commit/vacuum rates) is
// `txcache-bench -exp writeheavy`.
func BenchmarkWriteHeavy(b *testing.B) {
	for _, extra := range []int{0, 3} {
		b.Run(fmt.Sprintf("extraIdx=%d", extra), func(b *testing.B) {
			site := buildSite(b, bench.SiteConfig{
				Mode: bench.ModeTxCache, CacheBytes: 4 << 20,
				Mix: &rubis.WriteHeavyMix, ExtraWriteIndexes: extra,
			})
			staleness := time.Duration(30 * bench.TimeScale * float64(time.Second))
			rubis.RunEmulator(site.App, rubis.EmulatorConfig{
				Clients: 8, Staleness: staleness, Duration: 300 * time.Millisecond,
				Seed: 42, Mix: &rubis.WriteHeavyMix,
			})
			site.ResetStats()
			c0 := site.Engine.Stats().Commits
			var seed atomic.Int64
			start := time.Now()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(1000 + seed.Add(1)))
				user := int64(rng.Intn(site.App.DS.Scale.Users))
				for pb.Next() {
					kind := rubis.PickFrom(rng, &rubis.WriteHeavyMix)
					_ = site.App.DoInteraction(context.Background(), rng, user, kind, staleness)
				}
			})
			b.StopTimer()
			elapsed := time.Since(start).Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N)/elapsed, "req/s")
				b.ReportMetric(float64(site.Engine.Stats().Commits-c0)/elapsed, "commits/s")
			}
		})
	}
}

// BenchmarkAblationVisibilityOrder measures §5.2's design choice of
// evaluating scan predicates before visibility checks. The eager (stock)
// ordering pollutes invalidity masks with unrelated dead tuples, shrinking
// validity intervals and with them the hit rate.
func BenchmarkAblationVisibilityOrder(b *testing.B) {
	for _, eager := range []bool{false, true} {
		name := "predicate-first"
		if eager {
			name = "visibility-first"
		}
		b.Run(name, func(b *testing.B) {
			runMix(b, buildSite(b, bench.SiteConfig{
				Mode: bench.ModeTxCache, CacheBytes: 4 << 20, EagerVisibilityCheck: eager,
			}), 30)
		})
	}
}

// BenchmarkValidityTrackingOverhead quantifies §8.1's claim that computing
// validity intervals and invalidation tags adds negligible query cost.
func BenchmarkValidityTrackingOverhead(b *testing.B) {
	for _, tracking := range []bool{true, false} {
		name := "tracking-on"
		if !tracking {
			name = "tracking-off"
		}
		b.Run(name, func(b *testing.B) {
			engine := db.New(db.Options{DisableValidityTracking: !tracking})
			if _, err := rubis.Load(engine, rubis.TestScale, 3); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx, err := engine.Begin(true, 0)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := tx.Query("SELECT id, name, max_bid FROM items WHERE category = ?", int64(i%10)); err != nil {
					b.Fatal(err)
				}
				tx.Abort()
			}
		})
	}
}

// BenchmarkPincushionRoundTrip covers §5.4's claim that pincushion requests
// are sub-millisecond (theirs: <0.2ms including the network round trip).
func BenchmarkPincushionRoundTrip(b *testing.B) {
	site := buildSite(b, bench.SiteConfig{Mode: bench.ModeTxCache, CacheBytes: 1 << 20})
	for i := 0; i < 10; i++ {
		ts, wall := site.Engine.PinLatest()
		site.PC.Register(ts, wall)
	}
	release := make([]interval.Timestamp, 0, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pins := site.PC.GetPins(context.Background(), time.Minute)
		release = release[:0]
		for _, p := range pins {
			release = append(release, p.TS)
		}
		site.PC.Release(release)
	}
}

// BenchmarkCacheServer measures raw cache-node lookup and put costs.
func BenchmarkCacheServer(b *testing.B) {
	node := txcache.NewCacheServer(txcache.CacheConfig{})
	payload := make([]byte, 512)
	node.ApplyInvalidation(invalidation.Message{TS: 1 << 20, WallTime: time.Now()})
	for i := 0; i < 10000; i++ {
		node.Put(fmt.Sprintf("key-%d", i), payload,
			txcache.Interval{Lo: interval.Timestamp(i + 1), Hi: txcache.Infinity}, true, interval.Timestamp(i+1),
			[]invalidation.TagID{invalidation.Intern(invalidation.KeyTag("t", "id", fmt.Sprint(i)))})
	}
	b.Run("lookup-hit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			node.Lookup(context.Background(), fmt.Sprintf("key-%d", i%10000), 1<<19, 1<<21, 0, txcache.Infinity)
		}
	})
	b.Run("put", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			node.Put(fmt.Sprintf("put-%d", i), payload,
				txcache.Interval{Lo: 5, Hi: 100}, false, 0, nil)
		}
	})
	b.Run("invalidation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			node.ApplyInvalidation(invalidation.Message{
				TS:       interval.Timestamp(1<<21 + i),
				WallTime: time.Now(),
				Tags:     []invalidation.TagID{invalidation.Intern(invalidation.KeyTag("t", "id", fmt.Sprint(i%10000)))},
			})
		}
	})
}

// BenchmarkParallelCommit measures raw commit throughput when concurrent
// writers target disjoint tables. Under the original engine-wide exclusive
// commit lock this cannot scale with GOMAXPROCS; under per-table locking
// with the pipelined commit sequencer, only the in-order publish step is
// serialized, so disjoint commits overlap.
func BenchmarkParallelCommit(b *testing.B) {
	const tables = 16
	e := db.New(db.Options{})
	for i := 0; i < tables; i++ {
		if err := e.DDL(fmt.Sprintf(`CREATE TABLE shard%d (id BIGINT PRIMARY KEY, v BIGINT)`, i)); err != nil {
			b.Fatal(err)
		}
	}
	var worker, nextID atomic.Int64
	start := time.Now()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		src := fmt.Sprintf("INSERT INTO shard%d (id, v) VALUES (?, ?)", worker.Add(1)%tables)
		for pb.Next() {
			id := nextID.Add(1)
			tx, err := e.Begin(false, 0)
			if err != nil {
				b.Error(err)
				return
			}
			if _, err := tx.Exec(src, id, id); err != nil {
				tx.Abort()
				b.Error(err)
				return
			}
			if _, err := tx.Commit(); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	if elapsed := time.Since(start).Seconds(); elapsed > 0 {
		b.ReportMetric(float64(b.N)/elapsed, "commits/s")
	}
}

// BenchmarkReadersDuringCommits measures read throughput on one table while
// a background writer continuously commits to a different table and vacuum
// runs periodically. With the engine-wide lock every commit stalls every
// reader; with per-table locks readers of a disjoint table never block.
func BenchmarkReadersDuringCommits(b *testing.B) {
	const seedRows = 1000
	e := db.New(db.Options{})
	for _, ddl := range []string{
		`CREATE TABLE hot (id BIGINT PRIMARY KEY, v BIGINT)`,
		`CREATE TABLE churn (id BIGINT PRIMARY KEY, v BIGINT)`,
	} {
		if err := e.DDL(ddl); err != nil {
			b.Fatal(err)
		}
	}
	tx, err := e.Begin(false, 0)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < seedRows; i++ {
		if _, err := tx.Exec("INSERT INTO hot (id, v) VALUES (?, ?)", int64(i), int64(i)); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := tx.Commit(); err != nil {
		b.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var commits atomic.Int64
	writerErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for id := int64(1); ; id++ {
			select {
			case <-stop:
				return
			default:
			}
			tx, err := e.Begin(false, 0)
			if err != nil {
				writerErr <- err
				return
			}
			if _, err := tx.Exec("INSERT INTO churn (id, v) VALUES (?, ?)", id, id); err != nil {
				tx.Abort()
				writerErr <- err
				return
			}
			if _, err := tx.Commit(); err != nil {
				writerErr <- err
				return
			}
			commits.Add(1)
			if id%256 == 0 {
				e.Vacuum()
			}
		}
	}()

	var probe atomic.Int64
	start := time.Now()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			id := probe.Add(1) % seedRows
			tx, err := e.Begin(true, 0)
			if err != nil {
				b.Error(err)
				return
			}
			if _, err := tx.Query("SELECT v FROM hot WHERE id = ?", id); err != nil {
				tx.Abort()
				b.Error(err)
				return
			}
			tx.Abort()
		}
	})
	b.StopTimer()
	// Snapshot both the clock and the commit counter before stopping the
	// writer, so bg-commits/s reflects only the measured window.
	elapsed := time.Since(start).Seconds()
	nCommits := commits.Load()
	close(stop)
	wg.Wait()
	select {
	case err := <-writerErr:
		b.Fatalf("background writer died: %v", err)
	default:
	}
	if elapsed > 0 {
		b.ReportMetric(float64(b.N)/elapsed, "reads/s")
		b.ReportMetric(float64(nCommits)/elapsed, "bg-commits/s")
	}
}
