package txcache_test

// Kill-9 crash-recovery property test for the durable database daemon.
//
// The harness builds the real txcache-dbd binary, runs it against a shared
// data directory, and drives concurrent writers over the real dbnet wire
// protocol while killing the daemon with SIGKILL at random points. Each
// writer appends rows (worker, seq) to an `ops` table and, in the same
// transaction, bumps that worker's row in a `counters` aggregate — so the
// pair forms a RUBiS-style oracle: whatever prefix of operations survives,
// the aggregate must agree with it exactly.
//
// After every crash the harness restarts the daemon and checks the
// recovery contract:
//
//   - every acknowledged commit is present (commit ts <= RecoveredTS);
//   - each worker's surviving rows are a contiguous prefix 1..K — replay
//     stops at the first torn record and never applies past a gap, so no
//     transaction can survive while an earlier one from the same session
//     is lost;
//   - counters.nops == COUNT(ops) per worker — replay is transactional,
//     never half a transaction;
//   - the cache node's consistency horizon has been warm-booted to at
//     least RecoveredTS, so no cache entry can be served across the
//     crash's lost-invalidation gap.
//
// An acknowledgement lost in flight (connection died after the commit
// record hit the disk) is resolved by retrying the same sequence number:
// a unique-constraint violation on the ops primary key is proof the
// in-doubt commit landed.
//
// The final cycle exits via SIGTERM instead and verifies the clean-
// shutdown contract: the next boot replays nothing and reports CleanBoot.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"txcache/internal/cacheserver"
	"txcache/internal/clock"
	"txcache/internal/db"
	"txcache/internal/db/dbnet"
	"txcache/internal/interval"
)

// dbdStatus mirrors the daemon's -status-file payload.
type dbdStatus struct {
	PID        int             `json:"pid"`
	Addr       string          `json:"addr"`
	Durable    bool            `json:"durable"`
	Recovery   db.RecoveryInfo `json:"recovery"`
	LastCommit uint64          `json:"lastCommit"`
}

const crashSchema = `
CREATE TABLE ops (id BIGINT PRIMARY KEY, worker BIGINT NOT NULL, seq BIGINT NOT NULL);
CREATE INDEX ops_worker ON ops (worker);
CREATE TABLE counters (worker BIGINT PRIMARY KEY, nops BIGINT NOT NULL)
`

// opKeyStride packs (worker, seq) into the ops primary key.
const opKeyStride = 1 << 32

// crashWorker is one writer's ground truth, owned by the test process,
// which survives every daemon crash.
type crashWorker struct {
	id        int64
	next      int64 // next seq to attempt
	attempted int64 // highest seq ever attempted
	firmAcked int64 // highest seq whose commit was acknowledged (contiguous by construction)
	maxTS     interval.Timestamp
	conflicts int
	indoubt   int // acks lost to the crash, later proven durable via the unique key
}

// step attempts the worker's next operation once. It returns false when
// the daemon looks unreachable (the caller backs off and retries).
func (w *crashWorker) step(cl *dbnet.Client) bool {
	seq := w.next
	if seq > w.attempted {
		w.attempted = seq
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	tx, err := cl.Begin(ctx, false, 0)
	if err != nil {
		return false
	}
	ts, err := func() (interval.Timestamp, error) {
		if _, err := tx.Exec("INSERT INTO ops (id, worker, seq) VALUES (?, ?, ?)",
			w.id*opKeyStride+seq, w.id, seq); err != nil {
			tx.Abort()
			return 0, err
		}
		r, err := tx.Query("SELECT nops FROM counters WHERE worker = ?", w.id)
		if err != nil || len(r.Rows) != 1 {
			tx.Abort()
			if err == nil {
				err = fmt.Errorf("counters row for worker %d missing", w.id)
			}
			return 0, err
		}
		n, _ := r.Rows[0][0].(int64)
		if _, err := tx.Exec("UPDATE counters SET nops = ? WHERE worker = ?", n+1, w.id); err != nil {
			tx.Abort()
			return 0, err
		}
		if seq%4 == 0 {
			// Every 4th op also bumps the shared row all workers fight
			// over, forcing real serialization conflicts (and aborted
			// retries) into the crash window.
			g, err := tx.Query("SELECT nops FROM counters WHERE worker = 0")
			if err != nil || len(g.Rows) != 1 {
				tx.Abort()
				if err == nil {
					err = errors.New("shared counters row missing")
				}
				return 0, err
			}
			gn, _ := g.Rows[0][0].(int64)
			if _, err := tx.Exec("UPDATE counters SET nops = ? WHERE worker = 0", gn+1); err != nil {
				tx.Abort()
				return 0, err
			}
		}
		return tx.Commit()
	}()
	switch {
	case err == nil:
		w.firmAcked = seq
		if ts > w.maxTS {
			w.maxTS = ts
		}
		w.next++
		return true
	case errors.Is(err, db.ErrSerialization):
		w.conflicts++
		return true // same seq, fresh tx
	case strings.Contains(err.Error(), "unique constraint"):
		// The in-doubt commit from before a crash actually landed: the
		// whole retry transaction aborted (so counters stays correct) and
		// seq is durable — just not counted in firmAcked, since we never
		// saw its commit timestamp.
		w.indoubt++
		w.next++
		return true
	default:
		return false // daemon gone (or dying); retry this seq after reboot
	}
}

// crashDaemon wraps one txcache-dbd process.
type crashDaemon struct {
	cmd    *exec.Cmd
	status dbdStatus
	logF   *os.File
}

func startDaemon(t *testing.T, bin, dataDir, statusPath, schemaPath, cacheAddr string) *crashDaemon {
	t.Helper()
	logF, err := os.Create(statusPath + ".log")
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin,
		"-listen", "127.0.0.1:0",
		"-data-dir", dataDir,
		"-wal-sync", "fdatasync",
		"-checkpoint-bytes", "65536", // small, so crashes land on both sides of checkpoints
		"-schema", schemaPath,
		"-status-file", statusPath,
		"-vacuum-interval", "250ms",
		"-caches", cacheAddr,
	)
	cmd.Stdout, cmd.Stderr = logF, logF
	if err := cmd.Start(); err != nil {
		logF.Close()
		t.Fatalf("start daemon: %v", err)
	}
	d := &crashDaemon{cmd: cmd, logF: logF}
	t.Cleanup(func() {
		_ = d.cmd.Process.Kill()
		_ = d.cmd.Wait()
		d.logF.Close()
	})
	deadline := time.Now().Add(15 * time.Second)
	for {
		blob, err := os.ReadFile(statusPath)
		if err == nil && json.Unmarshal(blob, &d.status) == nil && d.status.Addr != "" {
			return d
		}
		if time.Now().After(deadline) {
			d.dumpLog(t)
			t.Fatalf("daemon never published %s", statusPath)
		}
		if d.cmd.ProcessState != nil {
			d.dumpLog(t)
			t.Fatalf("daemon exited before publishing status")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (d *crashDaemon) dumpLog(t *testing.T) {
	t.Helper()
	blob, err := os.ReadFile(d.logF.Name())
	if err == nil && len(blob) > 0 {
		t.Logf("daemon log:\n%s", blob)
	}
}

// kill SIGKILLs the daemon and reaps it.
func (d *crashDaemon) kill() {
	_ = d.cmd.Process.Kill()
	_ = d.cmd.Wait()
	d.logF.Close()
}

// terminate sends SIGTERM and waits for a clean exit.
func (d *crashDaemon) terminate(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	if err := d.cmd.Wait(); err != nil {
		d.dumpLog(t)
		t.Fatalf("daemon did not exit cleanly on SIGTERM: %v", err)
	}
	d.logF.Close()
}

// buildDaemon compiles the real txcache-dbd binary once per test run.
func buildDaemon(t *testing.T, dir string) string {
	t.Helper()
	goBin := filepath.Join(runtime.GOROOT(), "bin", "go")
	if _, err := os.Stat(goBin); err != nil {
		goBin = "go"
	}
	bin := filepath.Join(dir, "txcache-dbd")
	cmd := exec.Command(goBin, "build", "-o", bin, "./cmd/txcache-dbd")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build txcache-dbd: %v\n%s", err, out)
	}
	return bin
}

// verifyRecovered checks the full recovery contract against a freshly
// rebooted daemon (see the file comment for the property list).
func verifyRecovered(t *testing.T, cl *dbnet.Client, workers []*crashWorker, st dbdStatus, cycle int) {
	t.Helper()
	rec := st.Recovery.RecoveredTS
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// A read/write transaction always runs at the latest snapshot.
	tx, err := cl.Begin(ctx, false, 0)
	if err != nil {
		t.Fatalf("cycle %d: verify begin: %v", cycle, err)
	}
	defer tx.Abort()
	var wantShared int64
	for _, w := range workers {
		r, err := tx.Query("SELECT seq FROM ops WHERE worker = ? ORDER BY seq", w.id)
		if err != nil {
			t.Fatalf("cycle %d: verify worker %d: %v", cycle, w.id, err)
		}
		n := int64(len(r.Rows))
		for i, row := range r.Rows {
			if got, _ := row[0].(int64); got != int64(i)+1 {
				t.Fatalf("cycle %d: worker %d: surviving seqs are not a contiguous prefix: position %d holds %d",
					cycle, w.id, i, got)
			}
		}
		if n < w.firmAcked {
			t.Fatalf("cycle %d: worker %d: %d acknowledged commits but only %d rows survived recovery",
				cycle, w.id, w.firmAcked, n)
		}
		if n > w.attempted {
			t.Fatalf("cycle %d: worker %d: %d rows survived but only %d ops were ever attempted",
				cycle, w.id, n, w.attempted)
		}
		if w.maxTS > rec {
			t.Fatalf("cycle %d: worker %d: acknowledged commit ts %d exceeds recovered ts %d",
				cycle, w.id, w.maxTS, rec)
		}
		cr, err := tx.Query("SELECT nops FROM counters WHERE worker = ?", w.id)
		if err != nil || len(cr.Rows) != 1 {
			t.Fatalf("cycle %d: worker %d: counters row: %v", cycle, w.id, err)
		}
		if got, _ := cr.Rows[0][0].(int64); got != n {
			t.Fatalf("cycle %d: worker %d: oracle violated: counters.nops=%d but COUNT(ops)=%d",
				cycle, w.id, got, n)
		}
		// The worker's ground truth may lag reality by exactly the ops
		// whose acks died with the connection; recovery cannot have MORE
		// than attempted (checked above), so resync and continue.
		w.next = n + 1
		wantShared += n / 4 // seqs 4, 8, ... each bumped the shared row
	}
	gr, err := tx.Query("SELECT nops FROM counters WHERE worker = 0")
	if err != nil || len(gr.Rows) != 1 {
		t.Fatalf("cycle %d: shared counters row: %v", cycle, err)
	}
	if got, _ := gr.Rows[0][0].(int64); got != wantShared {
		t.Fatalf("cycle %d: cross-worker oracle violated: shared counter %d, expected %d from surviving rows",
			cycle, got, wantShared)
	}
}

func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and repeatedly kills a subprocess")
	}
	tmp := t.TempDir()
	bin := buildDaemon(t, tmp)
	dataDir := filepath.Join(tmp, "data")
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		t.Fatal(err)
	}
	schemaPath := filepath.Join(tmp, "schema.sql")
	if err := os.WriteFile(schemaPath, []byte(crashSchema), 0o644); err != nil {
		t.Fatal(err)
	}

	// One in-process cache node that outlives every daemon crash: its
	// consistency horizon must be warm-booted past each recovery point.
	node := cacheserver.New(cacheserver.Config{MaxStaleness: time.Minute, Clock: clock.Real{}})
	nodeL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer nodeL.Close()
	go node.Serve(nodeL)
	cacheAddr := nodeL.Addr().String()

	const nWorkers = 4
	workers := make([]*crashWorker, nWorkers)
	for i := range workers {
		workers[i] = &crashWorker{id: int64(i + 1), next: 1}
	}

	rng := rand.New(rand.NewSource(0x7c5))
	const cycles = 5
	var lastStatus dbdStatus
	for cycle := 0; cycle <= cycles; cycle++ {
		statusPath := filepath.Join(tmp, fmt.Sprintf("status-%d.json", cycle))
		d := startDaemon(t, bin, dataDir, statusPath, schemaPath, cacheAddr)
		st := d.status
		if !st.Durable {
			t.Fatal("daemon did not open the data directory durably")
		}
		if cycle > 0 {
			if st.Recovery.RecoveredTS < lastStatus.Recovery.RecoveredTS {
				t.Fatalf("cycle %d: recovered ts went backward: %d -> %d",
					cycle, lastStatus.Recovery.RecoveredTS, st.Recovery.RecoveredTS)
			}
			if hz := node.Stats().Horizon; hz < st.Recovery.RecoveredTS {
				t.Fatalf("cycle %d: cache horizon %d below recovered ts %d: node could serve across the crash gap",
					cycle, hz, st.Recovery.RecoveredTS)
			}
		}
		lastStatus = st

		cl, err := dbnet.Dial(st.Addr, nWorkers+1)
		if err != nil {
			t.Fatalf("cycle %d: dial: %v", cycle, err)
		}

		if cycle == 0 {
			// Seed the oracle rows exactly once; every later boot must
			// recover them from the log or a checkpoint.
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			tx, err := cl.Begin(ctx, false, 0)
			if err != nil {
				t.Fatalf("seed begin: %v", err)
			}
			if _, err := tx.Exec("INSERT INTO counters (worker, nops) VALUES (?, ?)", int64(0), int64(0)); err != nil {
				t.Fatalf("seed shared row: %v", err)
			}
			for _, w := range workers {
				if _, err := tx.Exec("INSERT INTO counters (worker, nops) VALUES (?, ?)", w.id, int64(0)); err != nil {
					t.Fatalf("seed: %v", err)
				}
			}
			if _, err := tx.Commit(); err != nil {
				t.Fatalf("seed commit: %v", err)
			}
			cancel()
		} else {
			verifyRecovered(t, cl, workers, st, cycle)
		}

		if cycle == cycles {
			// Final boot is verification-only: prove the previous SIGTERM
			// left a clean-shutdown marker that skipped replay entirely.
			if !st.Recovery.CleanBoot {
				d.dumpLog(t)
				t.Fatalf("final boot after SIGTERM was not clean: %+v", st.Recovery)
			}
			if st.Recovery.CommitsReplayed != 0 || st.Recovery.DDLReplayed != 0 {
				t.Fatalf("clean boot still replayed work: %+v", st.Recovery)
			}
			cl.Close()
			d.terminate(t)
			break
		}

		// Open fire: every worker loops until the daemon dies under it.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for _, w := range workers {
			wg.Add(1)
			go func(w *crashWorker) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if !w.step(cl) {
						select {
						case <-stop:
							return
						case <-time.After(5 * time.Millisecond):
						}
					}
				}
			}(w)
		}
		time.Sleep(time.Duration(100+rng.Intn(250)) * time.Millisecond)
		if cycle == cycles-1 {
			// Last working cycle exits gracefully: quiesce the writers
			// first (SIGTERM flushes, so acks must all be firm before it).
			close(stop)
			wg.Wait()
			cl.Close()
			d.terminate(t)
		} else {
			d.kill()
			close(stop)
			wg.Wait()
			cl.Close()
		}
	}

	var acked, indoubt, conflicts int64
	for _, w := range workers {
		acked += w.firmAcked
		indoubt += int64(w.indoubt)
		conflicts += int64(w.conflicts)
	}
	t.Logf("crash cycles: %d kills, %d acked ops, %d in-doubt acks proven durable, %d serialization retries, final recovered ts %d",
		cycles-1, acked, indoubt, conflicts, lastStatus.Recovery.RecoveredTS)
	if acked == 0 {
		t.Fatal("no operation was ever acknowledged; the harness exercised nothing")
	}
}
